"""Reverse-mode autograd ``Tensor`` over NumPy arrays.

Design
------
A :class:`Tensor` wraps a ``numpy.ndarray`` plus an optional autograd tape
entry: the parent tensors it was computed from and a closure that propagates
an output gradient to parent ``.grad`` buffers.  ``Tensor.backward()``
topologically sorts the tape and runs the closures in reverse order.

The engine is deliberately small but not toy: it supports broadcasting
(with correct gradient "unbroadcasting"), row gather/scatter (the core of
minibatch GNN feature indexing), and is the base for the sparse/segment
kernels in :mod:`repro.tensor.sparse`.

Following the HPC-Python guidance used for this repo, every op is a
vectorized NumPy expression — no per-element Python loops appear anywhere on
the training path.
"""

from __future__ import annotations

import contextlib
import os
from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.tensor import arena

ArrayLike = Union[np.ndarray, float, int, list, tuple]

# Global autograd switch (see :func:`no_grad`).
_GRAD_ENABLED = True

# Global fused-kernel switch (see :func:`kernel_fusion`).  Fused ops are
# bit-identical to their composed forms by contract (DESIGN.md §5.12 and
# tests/tensor/test_fused_kernels.py); the flag exists so equivalence tests
# and benchmarks can run the composed "seed" path on demand.
_FUSION_ENABLED = os.environ.get("REPRO_KERNEL_FUSION", "1") != "0"


@contextlib.contextmanager
def no_grad():
    """Context manager disabling tape recording (like ``torch.no_grad``)."""
    global _GRAD_ENABLED
    prev = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = prev


def grad_enabled() -> bool:
    """Return whether autograd taping is currently enabled."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def kernel_fusion(enabled: bool):
    """Force fused kernels on or off within a scope (tests / benchmarks)."""
    global _FUSION_ENABLED
    prev = _FUSION_ENABLED
    _FUSION_ENABLED = bool(enabled)
    try:
        yield
    finally:
        _FUSION_ENABLED = prev


def fusion_enabled() -> bool:
    """Whether fused kernels are in use (``REPRO_KERNEL_FUSION``, default on)."""
    return _FUSION_ENABLED


# Lazily bound to repro.tensor.sparse._segment_sum_array (importing sparse at
# module scope would be circular — sparse builds on Tensor).
_segment_sum_array = None


def _scatter_add_rows(g: np.ndarray, idx: np.ndarray, n_rows: int) -> np.ndarray:
    """Row scatter-add via the selection-CSR segment kernel.

    Bit-identical to ``np.add.at(zeros, idx, g)`` (pinned by
    ``tests/tensor/test_segment_kernels.py``) but several times faster for
    2-D operands, where ``ufunc.at`` falls back to a slow generic loop.
    """
    global _segment_sum_array
    if _segment_sum_array is None:
        from repro.tensor.sparse import _segment_sum_array as fn

        _segment_sum_array = fn
    return _segment_sum_array(g, idx, n_rows)


def _as_array(data: ArrayLike, dtype=np.float64) -> np.ndarray:
    if type(data) is np.ndarray and data.dtype == dtype:
        # Fast path: already a plain ndarray of the right dtype — wrapping
        # must not copy (ops call this for every operand).
        return data
    return np.asarray(data, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Reduce ``grad`` so its shape matches ``shape`` (inverse broadcasting).

    NumPy broadcasting may have (a) prepended axes and (b) stretched axes of
    size 1.  The adjoint of broadcasting is summation over those axes.
    """
    if grad.shape == shape:
        return grad
    # Sum out prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were stretched from 1.
    axes = tuple(i for i, (g, s) in enumerate(zip(grad.shape, shape)) if s == 1 and g != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy array with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``dtype`` (float64 by default).
    requires_grad:
        Whether gradients should be accumulated into ``self.grad`` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn", "_op")
    # Make reflected NumPy ops defer to Tensor.
    __array_priority__ = 100.0

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        *,
        _parents: Sequence["Tensor"] = (),
        _backward_fn: Optional[Callable[[np.ndarray], None]] = None,
        _op: str = "leaf",
        dtype=np.float64,
    ):
        self.data = _as_array(data, dtype=dtype)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._parents: tuple = tuple(_parents)
        self._backward_fn = _backward_fn
        self._op = _op

    # ------------------------------------------------------------------ #
    # basic introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the tape."""
        return Tensor(self.data, requires_grad=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Tensor(shape={self.shape}, op={self._op!r}, "
            f"requires_grad={self.requires_grad})"
        )

    # ------------------------------------------------------------------ #
    # tape machinery
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward_fn: Callable[[np.ndarray], None],
        op: str,
    ) -> "Tensor":
        """Create a non-leaf tensor, recording the tape entry if enabled."""
        req = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        if req:
            return Tensor(
                data,
                requires_grad=True,
                _parents=[p for p in parents if p.requires_grad],
                _backward_fn=backward_fn,
                _op=op,
            )
        return Tensor(data, requires_grad=False, _op=op)

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this tensor's gradient buffer."""
        if self.grad is None:
            # Copy so later in-place accumulation never aliases op outputs
            # (``grad`` may be a view of another node's gradient buffer).
            buf = arena.take(self.data.shape, self.data.dtype)
            if buf is None:
                self.grad = np.array(grad, dtype=self.data.dtype, copy=True)
            else:
                np.copyto(buf, grad, casting="unsafe")
                self.grad = buf
        else:
            self.grad += grad

    def _accumulate_owned(self, buf: np.ndarray) -> None:
        """Accumulate a freshly built buffer the caller owns outright.

        Unlike :meth:`_accumulate` the array is adopted without a defensive
        copy — callers guarantee ``buf`` aliases nothing else (scatter-add
        outputs, zero-filled scratch).  When a gradient already exists the
        buffer's content is folded in and the buffer itself recycled.
        """
        if self.grad is None:
            self.grad = buf
        else:
            self.grad += buf
            arena.release(buf)

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        ``grad`` defaults to 1 for scalar outputs (the common loss case).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor without grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    "backward() without an explicit gradient requires a "
                    f"scalar tensor; got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match tensor shape "
                f"{self.shape}"
            )

        # Iterative topological sort (recursion would overflow on deep tapes).
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if id(p) not in visited:
                    stack.append((p, False))

        self._accumulate(grad)
        # Release-after-last-use: in reverse-topological order, once a
        # node's closure has propagated its gradient to the parents, no
        # later closure can read it (all consumers already ran), so interior
        # gradient buffers are recycled immediately instead of living until
        # the whole tape is garbage collected.  Leaves (parameters, inputs)
        # have no closure and keep their gradients for the optimizer.
        recycle = arena.arena_enabled()
        for node in reversed(topo):
            fn = node._backward_fn
            if fn is not None and node.grad is not None:
                fn(node.grad)
                if recycle:
                    arena.release(node.grad)
                    node.grad = None

    def zero_grad(self) -> None:
        if self.grad is not None:
            arena.release(self.grad)
            self.grad = None

    # ------------------------------------------------------------------ #
    # arithmetic ops
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = _wrap(other)
        out_data = self.data + other.data

        def backward_fn(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(g, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(g, other.data.shape))

        return Tensor._make(out_data, (self, other), backward_fn, "add")

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward_fn(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-g)

        return Tensor._make(-self.data, (self,), backward_fn, "neg")

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-_wrap(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return _wrap(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = _wrap(other)
        out_data = self.data * other.data

        def backward_fn(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(g * other.data, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(g * self.data, other.data.shape))

        return Tensor._make(out_data, (self, other), backward_fn, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = _wrap(other)
        out_data = self.data / other.data

        def backward_fn(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(g / other.data, self.data.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-g * self.data / (other.data**2), other.data.shape)
                )

        return Tensor._make(out_data, (self, other), backward_fn, "div")

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return _wrap(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward_fn(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward_fn, "pow")

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = _wrap(other)
        if self.data.ndim != 2 or other.data.ndim != 2:
            raise ValueError(
                "matmul supports 2-D operands only; got "
                f"{self.data.ndim}-D @ {other.data.ndim}-D"
            )
        out_data = self.data @ other.data

        def backward_fn(g: np.ndarray) -> None:
            # The products are freshly allocated, so they are adopted as
            # gradient buffers outright (no defensive copy).
            if self.requires_grad:
                self._accumulate_owned(g @ other.data.T)
            if other.requires_grad:
                other._accumulate_owned(self.data.T @ g)

        return Tensor._make(out_data, (self, other), backward_fn, "matmul")

    # ------------------------------------------------------------------ #
    # shape / indexing ops
    # ------------------------------------------------------------------ #
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        in_shape = self.data.shape

        def backward_fn(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g.reshape(in_shape))

        return Tensor._make(out_data, (self,), backward_fn, "reshape")

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def transpose(self) -> "Tensor":
        out_data = self.data.T

        def backward_fn(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g.T)

        return Tensor._make(out_data, (self,), backward_fn, "transpose")

    def index_rows(self, idx: np.ndarray) -> "Tensor":
        """Gather rows ``self[idx]`` (autograd scatter-add on backward)."""
        idx = np.asarray(idx, dtype=np.int64)
        out_data = self.data[idx]
        n_rows = self.data.shape[0]

        def backward_fn(g: np.ndarray) -> None:
            if not self.requires_grad:
                return
            if _FUSION_ENABLED:
                # Selection-CSR scatter-add: bit-identical to the np.add.at
                # path below, much faster on 2-D/3-D gradients.  The output
                # is freshly built, so it can be adopted without a copy.
                self._accumulate_owned(_scatter_add_rows(g, idx, n_rows))
            else:
                buf = np.zeros_like(self.data)
                np.add.at(buf, idx, g)
                self._accumulate(buf)

        return Tensor._make(out_data, (self,), backward_fn, "index_rows")

    def slice_cols(self, start: int, stop: int) -> "Tensor":
        """Return columns ``[start:stop]`` (used by NFP feature sharding)."""
        out_data = self.data[:, start:stop]
        full_shape = self.data.shape

        def backward_fn(g: np.ndarray) -> None:
            if self.requires_grad:
                buf = arena.take_zeros(full_shape, self.data.dtype)
                if buf is None:
                    buf = np.zeros(full_shape, dtype=self.data.dtype)
                buf[:, start:stop] = g
                self._accumulate_owned(buf)

        return Tensor._make(out_data, (self,), backward_fn, "slice_cols")

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        in_shape = self.data.shape

        def backward_fn(g: np.ndarray) -> None:
            if not self.requires_grad:
                return
            if axis is None:
                self._accumulate(np.broadcast_to(g, in_shape).copy())
            else:
                gg = g if keepdims else np.expand_dims(g, axis)
                self._accumulate(np.broadcast_to(gg, in_shape).copy())

        return Tensor._make(out_data, (self,), backward_fn, "sum")

    def mean(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            n = self.data.size
        else:
            n = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / n)

    # ------------------------------------------------------------------ #
    # element-wise nonlinear ops
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward_fn(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * out_data)

        return Tensor._make(out_data, (self,), backward_fn, "exp")

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward_fn(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g / self.data)

        return Tensor._make(out_data, (self,), backward_fn, "log")

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward_fn(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward_fn, "tanh")

    def maximum_scalar(self, value: float) -> "Tensor":
        """Element-wise ``max(self, value)`` (building block of ReLU)."""
        out_data = np.maximum(self.data, value)
        mask = self.data > value

        def backward_fn(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * mask)

        return Tensor._make(out_data, (self,), backward_fn, "maximum_scalar")


def _wrap(x: ArrayLike) -> Tensor:
    return x if isinstance(x, Tensor) else Tensor(x)


# ---------------------------------------------------------------------- #
# free functions
# ---------------------------------------------------------------------- #
def tensor(data: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Create a leaf tensor (convenience constructor)."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(*shape: int, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with autograd support."""
    tensors = [_wrap(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward_fn(g: np.ndarray) -> None:
        for t, a, b in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                sl = [slice(None)] * g.ndim
                sl[axis] = slice(a, b)
                t._accumulate(g[tuple(sl)])

    return Tensor._make(out_data, tensors, backward_fn, "concat")


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with autograd support."""
    tensors = [_wrap(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward_fn(g: np.ndarray) -> None:
        parts = np.moveaxis(g, axis, 0)
        for t, piece in zip(tensors, parts):
            if t.requires_grad:
                t._accumulate(piece)

    return Tensor._make(out_data, tensors, backward_fn, "stack")


def add_n(tensors: Sequence[Tensor]) -> Tensor:
    """Sum an arbitrary list of same-shape tensors (used by allreduce)."""
    tensors = [_wrap(t) for t in tensors]
    if not tensors:
        raise ValueError("add_n requires at least one tensor")
    out_data = tensors[0].data.copy()
    for t in tensors[1:]:
        out_data += t.data

    def backward_fn(g: np.ndarray) -> None:
        for t in tensors:
            if t.requires_grad:
                t._accumulate(g)

    return Tensor._make(out_data, tensors, backward_fn, "add_n")
