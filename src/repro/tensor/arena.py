"""Shape/dtype-keyed buffer arena for gradient and activation recycling.

Training allocates the same gradient shapes every global batch: parameter
grads, scatter-add buffers for ``index_rows`` backward, and the shared
feature-gather staging buffer.  :class:`BufferPool` recycles those arrays
across batches instead of handing them back to the allocator, which removes
the dominant share of ``np.zeros``/``np.empty`` traffic from the training
step (see DESIGN.md §5.12).

Correctness model
-----------------
The pool only ever affects *where* bytes live, never what they hold:

* ``take`` returns an **uninitialized** buffer — every call site fully
  overwrites it (``np.copyto`` / ``np.take(out=...)``) or asks for
  ``take_zeros``, which memsets first.
* ``release`` is **ownership-checked**: only arrays the pool itself handed
  out are accepted back (a registry of lent-out ids), so externally
  assigned arrays (e.g. a test setting ``p.grad = np.ones(2)``) are never
  adopted and can never be handed to a second tensor.
* A released buffer is dead by contract — callers release a gradient only
  after its last consumer ran (reverse-topological order guarantees this
  inside ``Tensor.backward``).

The arena is process-global and toggled by :func:`buffer_arena` /
``REPRO_BUFFER_ARENA=0``; with it off, every call site degrades to the
exact allocation behavior the seed code had, which is how the equivalence
tests and benchmarks produce their "before" runs.
"""

from __future__ import annotations

import contextlib
import os
from typing import Dict, List, Optional, Tuple

import numpy as np

#: Buffers smaller than this stay on the normal allocator: the dict/registry
#: bookkeeping would cost more than the malloc it saves, and small scalars
#: (losses, 0-d grads) churn fast.
MIN_POOL_BYTES = 2048

#: Default cap on bytes parked in free lists (not counting lent-out buffers).
#: Past the cap, released buffers are dropped instead of retained.
DEFAULT_CAP_BYTES = 512 * 1024 * 1024


def _env_enabled() -> bool:
    return os.environ.get("REPRO_BUFFER_ARENA", "1") != "0"


def _env_cap() -> int:
    raw = os.environ.get("REPRO_ARENA_MB")
    if raw is None:
        return DEFAULT_CAP_BYTES
    return max(0, int(float(raw) * 1024 * 1024))


_ENABLED = _env_enabled()


def arena_enabled() -> bool:
    """Whether pooled buffers are in use (``REPRO_BUFFER_ARENA``, default on)."""
    return _ENABLED


@contextlib.contextmanager
def buffer_arena(enabled: bool):
    """Force the arena on or off within a scope (tests / benchmarks)."""
    global _ENABLED
    prev = _ENABLED
    _ENABLED = bool(enabled)
    try:
        yield
    finally:
        _ENABLED = prev


_Key = Tuple[tuple, object]


class BufferPool:
    """A free-list allocator of ndarrays keyed by ``(shape, dtype)``."""

    def __init__(self, cap_bytes: Optional[int] = None):
        self.cap_bytes = _env_cap() if cap_bytes is None else int(cap_bytes)
        self._free: Dict[_Key, List[np.ndarray]] = {}
        #: ids of buffers currently lent out -> their pool key; release only
        #: accepts arrays found here (ownership check).
        self._lent: Dict[int, _Key] = {}
        self._free_bytes = 0
        self.hits = 0
        self.misses = 0
        self.released = 0
        self.dropped = 0
        self.foreign = 0

    # ------------------------------------------------------------------ #
    def take(self, shape: tuple, dtype=np.float64) -> np.ndarray:
        """Hand out an **uninitialized** buffer of ``shape``/``dtype``.

        The caller must fully overwrite it before any read.
        """
        key = (tuple(shape), np.dtype(dtype))
        bucket = self._free.get(key)
        if bucket:
            buf = bucket.pop()
            self._free_bytes -= buf.nbytes
            self.hits += 1
        else:
            buf = np.empty(key[0], dtype=key[1])
            self.misses += 1
        if buf.nbytes >= MIN_POOL_BYTES:
            if len(self._lent) >= 65536:
                # Registry runaway (buffers taken but never released, then
                # garbage collected): forget them all.  Stale entries only
                # make future releases of those ids no-ops — safe.
                self._lent.clear()
            self._lent[id(buf)] = key
        return buf

    def take_zeros(self, shape: tuple, dtype=np.float64) -> np.ndarray:
        buf = self.take(shape, dtype)
        buf.fill(0.0)
        return buf

    def release(self, buf: np.ndarray) -> bool:
        """Return a pool-owned buffer to its free list.

        Arrays the pool never handed out (or views of them) are refused —
        that is the aliasing guarantee: nothing externally reachable can
        enter a free list and be handed to a second tensor.
        """
        key = self._lent.pop(id(buf), None)
        if (
            key is None
            or buf.shape != key[0]
            or buf.dtype != key[1]
            or buf.base is not None
        ):
            self.foreign += key is None
            return False
        if self._free_bytes + buf.nbytes > self.cap_bytes:
            self.dropped += 1
            return False
        self._free.setdefault(key, []).append(buf)
        self._free_bytes += buf.nbytes
        self.released += 1
        return True

    def owns(self, buf: np.ndarray) -> bool:
        """Whether ``buf`` is currently lent out by this pool."""
        return id(buf) in self._lent

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, float]:
        total = self.hits + self.misses
        return {
            "hits": float(self.hits),
            "misses": float(self.misses),
            "released": float(self.released),
            "dropped": float(self.dropped),
            "foreign": float(self.foreign),
            "free_bytes": float(self._free_bytes),
            "hit_rate": self.hits / total if total else 0.0,
        }

    def clear(self) -> None:
        self._free.clear()
        self._lent.clear()
        self._free_bytes = 0


#: The process-global pool every Tensor/featurestore call site shares.
_POOL = BufferPool()


def pool() -> BufferPool:
    return _POOL


def take(shape: tuple, dtype=np.float64) -> Optional[np.ndarray]:
    """Pool ``take`` honoring the enable flag and the small-buffer floor.

    Returns ``None`` when the arena is off or the buffer is too small to be
    worth pooling — callers fall back to their seed-path allocation.
    """
    if not _ENABLED:
        return None
    dt = np.dtype(dtype)
    if int(np.prod(shape)) * dt.itemsize < MIN_POOL_BYTES:
        return None
    return _POOL.take(shape, dt)


def take_zeros(shape: tuple, dtype=np.float64) -> Optional[np.ndarray]:
    buf = take(shape, dtype)
    if buf is not None:
        buf.fill(0.0)
    return buf


def release(buf: Optional[np.ndarray]) -> bool:
    """Ownership-checked release; safe to call on any array (or ``None``)."""
    if buf is None or not _ENABLED:
        return False
    return _POOL.release(buf)
