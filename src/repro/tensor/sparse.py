"""Sparse and segment kernels — the GNN analogue of DGL's SpMM/SDDMM.

A sampled GNN layer is a bipartite graph: edges ``(u, v)`` connect source
nodes (whose embeddings are inputs) to destination nodes (whose embeddings
are produced).  Aggregation over in-edges of each destination is expressed
with *segment operations*: edge values grouped by destination index.

All kernels here are autograd-aware and fully vectorized
(``np.add.at`` / ``np.ufunc.reduceat`` style), with exact adjoints:

===============   =======================================================
forward           backward
===============   =======================================================
gather_rows       scatter-add
segment_sum       gather
segment_mean      gather / count
segment_softmax   softmax Jacobian within each segment
spmm (CSR @ X)    CSR^T @ dY
===============   =======================================================
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.tensor.tensor import Tensor


def gather_rows(x: Tensor, idx: np.ndarray) -> Tensor:
    """Row gather ``x[idx]`` (alias of :meth:`Tensor.index_rows`)."""
    return x.index_rows(idx)


def _check_segments(segment_ids: np.ndarray, num_segments: int) -> np.ndarray:
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if segment_ids.size and (segment_ids.min() < 0 or segment_ids.max() >= num_segments):
        raise IndexError(
            f"segment ids must lie in [0, {num_segments}); got range "
            f"[{segment_ids.min()}, {segment_ids.max()}]"
        )
    return segment_ids


def segment_sum(values: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum ``values`` rows into ``num_segments`` buckets by ``segment_ids``.

    ``values`` is ``(E, d)`` (or ``(E,)``); the result is
    ``(num_segments, d)`` with row ``s`` equal to the sum of rows whose
    segment id is ``s``.  Empty segments produce zero rows.
    """
    segment_ids = _check_segments(segment_ids, num_segments)
    out_shape = (num_segments,) + values.data.shape[1:]
    out = np.zeros(out_shape, dtype=values.data.dtype)
    np.add.at(out, segment_ids, values.data)

    def backward_fn(g: np.ndarray) -> None:
        if values.requires_grad:
            values._accumulate(g[segment_ids])

    return Tensor._make(out, (values,), backward_fn, "segment_sum")


def segment_count(segment_ids: np.ndarray, num_segments: int) -> np.ndarray:
    """Return the number of entries in each segment (plain array)."""
    segment_ids = _check_segments(segment_ids, num_segments)
    return np.bincount(segment_ids, minlength=num_segments).astype(np.float64)


def segment_mean(values: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Per-segment mean; empty segments yield zero rows."""
    counts = segment_count(segment_ids, num_segments)
    safe = np.maximum(counts, 1.0)
    total = segment_sum(values, segment_ids, num_segments)
    inv = (1.0 / safe).reshape((num_segments,) + (1,) * (values.data.ndim - 1))
    return total * Tensor(inv)


def segment_max(values: np.ndarray, segment_ids: np.ndarray, num_segments: int) -> np.ndarray:
    """Per-segment max of a plain array (non-differentiable by design).

    Used only as the numerical-stability shift inside
    :func:`segment_softmax` and the decomposed cross-device softmax — the
    softmax value is invariant to the shift, so detaching it keeps gradients
    exact.  Empty segments return ``-inf``.
    """
    segment_ids = _check_segments(segment_ids, num_segments)
    out = np.full((num_segments,) + values.shape[1:], -np.inf, dtype=np.float64)
    np.maximum.at(out, segment_ids, values)
    return out


def segment_softmax(scores: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Softmax of edge scores within each destination segment.

    This is GAT's ``edge_softmax``: for each destination node ``v`` the
    attention logits of its in-edges are normalized to sum to one.  Computed
    via the shift-invariant decomposition
    ``softmax(e) = exp(e - m_v) / sum exp(e - m_v)`` with the per-segment max
    ``m_v`` detached.
    """
    segment_ids = _check_segments(segment_ids, num_segments)
    maxes = segment_max(scores.data, segment_ids, num_segments)
    shift = Tensor(maxes[segment_ids])
    expd = (scores - shift).exp()
    denom = segment_sum(expd, segment_ids, num_segments)
    # Gather per-edge denominator and divide.
    return expd / denom.index_rows(segment_ids)


class CSRMatrix:
    """An immutable CSR adjacency operand for :func:`spmm`.

    Wraps ``scipy.sparse.csr_matrix`` and pre-builds the transpose, since
    every backward pass needs ``A^T``.  The matrix itself is structural (not
    a differentiable quantity), matching how GNN frameworks treat sampled
    adjacencies.
    """

    __slots__ = ("mat", "mat_t")

    def __init__(self, mat: sp.csr_matrix):
        self.mat = mat.tocsr()
        self.mat_t = self.mat.T.tocsr()

    @classmethod
    def from_edges(
        cls,
        edge_dst: np.ndarray,
        edge_src: np.ndarray,
        shape: tuple,
        values: Optional[np.ndarray] = None,
    ) -> "CSRMatrix":
        """Build an ``(n_dst, n_src)`` CSR matrix from edge index arrays."""
        edge_dst = np.asarray(edge_dst, dtype=np.int64)
        edge_src = np.asarray(edge_src, dtype=np.int64)
        if values is None:
            values = np.ones(edge_dst.shape[0], dtype=np.float64)
        mat = sp.csr_matrix((values, (edge_dst, edge_src)), shape=shape)
        return cls(mat)

    @property
    def shape(self) -> tuple:
        return self.mat.shape

    @property
    def nnz(self) -> int:
        return self.mat.nnz


def spmm(adj: CSRMatrix, x: Tensor) -> Tensor:
    """Sparse-dense product ``adj @ x`` with autograd on the dense side.

    Backward: ``dX = adj^T @ dY`` (exact adjoint of a linear map).
    """
    if adj.shape[1] != x.data.shape[0]:
        raise ValueError(
            f"spmm shape mismatch: adj is {adj.shape}, x has "
            f"{x.data.shape[0]} rows"
        )
    out = adj.mat @ x.data

    def backward_fn(g: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(adj.mat_t @ g)

    return Tensor._make(out, (x,), backward_fn, "spmm")
