"""Sparse and segment kernels — the GNN analogue of DGL's SpMM/SDDMM.

A sampled GNN layer is a bipartite graph: edges ``(u, v)`` connect source
nodes (whose embeddings are inputs) to destination nodes (whose embeddings
are produced).  Aggregation over in-edges of each destination is expressed
with *segment operations*: edge values grouped by destination index.

All kernels here are autograd-aware and fully vectorized
(``np.add.at`` / ``np.ufunc.reduceat`` style), with exact adjoints:

===============   =======================================================
forward           backward
===============   =======================================================
gather_rows       scatter-add
segment_sum       gather
segment_mean      gather / count
segment_softmax   softmax Jacobian within each segment
spmm (CSR @ X)    CSR^T @ dY
===============   =======================================================
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.tensor.tensor import Tensor


def gather_rows(x: Tensor, idx: np.ndarray) -> Tensor:
    """Row gather ``x[idx]`` (alias of :meth:`Tensor.index_rows`)."""
    return x.index_rows(idx)


def _check_segments(segment_ids: np.ndarray, num_segments: int) -> np.ndarray:
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if segment_ids.size and (segment_ids.min() < 0 or segment_ids.max() >= num_segments):
        raise IndexError(
            f"segment ids must lie in [0, {num_segments}); got range "
            f"[{segment_ids.min()}, {segment_ids.max()}]"
        )
    return segment_ids


def _is_nondecreasing(segment_ids: np.ndarray) -> bool:
    return segment_ids.shape[0] < 2 or bool(
        np.all(segment_ids[1:] >= segment_ids[:-1])
    )


#: Below this many rows the plain scatter-add wins (kernel setup overhead);
#: both paths are bit-identical, so the threshold is purely a speed knob.
_SMALL_E = 1024

#: Unsorted segments with at most this many trailing columns go through
#: column-wise 1-D scatter loops instead of a sort (another speed knob —
#: every path computes bit-identical results).
_COLWISE_MAX_COLS = 8


def _stable_order(segment_ids: np.ndarray, num_segments: int) -> np.ndarray:
    """``np.argsort(segment_ids, kind="stable")`` via a composite-key sort.

    Sorting ``sid * E + position`` and taking ``% E`` yields exactly the
    stable permutation (keys are unique, position breaks ties in original
    order) — but ``np.sort`` on the fused key runs several times faster
    than a stable argsort.  Falls back to argsort if the key could overflow
    ``int64`` (unreachable at any realistic E * num_segments).
    """
    E = segment_ids.shape[0]
    if 0 < E <= (2**62) // max(num_segments, 1):
        key = segment_ids * np.int64(E) + np.arange(E, dtype=np.int64)
        return np.sort(key) % np.int64(E)
    return np.argsort(segment_ids, kind="stable")


def _segment_sum_array(
    data: np.ndarray,
    segment_ids: np.ndarray,
    num_segments: int,
    order: "Optional[np.ndarray]" = None,
) -> np.ndarray:
    """Per-segment row sums, bit-identical to sequential ``np.add.at``.

    ``np.add.reduceat`` would be the obvious kernel but it reduces
    *pairwise*, so its float sums differ in the last bits from the
    sequential scatter-add the engine's equivalence tests pin.  Instead we
    multiply by a 0/1 *selection CSR* whose row ``s`` stores the positions
    of segment ``s``'s rows in their original order: scipy's CSR matvec
    accumulates each output row sequentially in stored-index order, which
    reproduces ``np.add.at`` exactly while running on a C hot loop.

    ``order`` (a stable argsort of ``segment_ids``) may be supplied by
    callers that already computed it; ``None`` means "compute if needed".
    """
    E = segment_ids.shape[0]
    out_shape = (num_segments,) + data.shape[1:]
    if E == 0:
        return np.zeros(out_shape, dtype=data.dtype)
    if E < _SMALL_E or data.ndim == 1:
        # NumPy's ufunc.at has a fast indexed loop for 1-D operands; it is
        # the sequential scatter-add itself, so identity is trivial.
        out = np.zeros(out_shape, dtype=data.dtype)
        np.add.at(out, segment_ids, data)
        return out
    if order is None and not _is_nondecreasing(segment_ids):
        ncol = int(np.prod(data.shape[1:]))
        if ncol <= _COLWISE_MAX_COLS:
            # Few columns: run the 1-D fast scatter-add per column on an
            # F-order copy.  Each output element sees the same additions
            # in the same order as the 2-D np.add.at — bit-identical.
            flat = np.asfortranarray(data.reshape(E, -1))
            out = np.zeros((num_segments, ncol), dtype=data.dtype)
            buf = np.zeros(num_segments, dtype=data.dtype)
            for j in range(ncol):
                buf[:] = 0
                np.add.at(buf, segment_ids, flat[:, j])
                out[:, j] = buf
            return out.reshape(out_shape)
        order = _stable_order(segment_ids, num_segments)
    counts = np.bincount(segment_ids, minlength=num_segments)
    indptr = np.zeros(num_segments + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    cols = np.arange(E, dtype=np.int64) if order is None else order
    sel = sp.csr_matrix(
        (np.ones(E, dtype=data.dtype), cols, indptr), shape=(num_segments, E)
    )
    out = sel @ data.reshape(E, -1)
    return out.reshape(out_shape)


def _segment_sum_tensor(
    values: Tensor,
    segment_ids: np.ndarray,
    num_segments: int,
    order: "Optional[np.ndarray]" = None,
) -> Tensor:
    out = _segment_sum_array(values.data, segment_ids, num_segments, order)

    def backward_fn(g: np.ndarray) -> None:
        if values.requires_grad:
            # Fresh fancy-index gather: adopted without a defensive copy.
            values._accumulate_owned(g[segment_ids])

    return Tensor._make(out, (values,), backward_fn, "segment_sum")


def segment_sum(values: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum ``values`` rows into ``num_segments`` buckets by ``segment_ids``.

    ``values`` is ``(E, d)`` (or ``(E,)``); the result is
    ``(num_segments, d)`` with row ``s`` equal to the sum of rows whose
    segment id is ``s``.  Empty segments produce zero rows.
    """
    segment_ids = _check_segments(segment_ids, num_segments)
    return _segment_sum_tensor(values, segment_ids, num_segments)


def segment_count(segment_ids: np.ndarray, num_segments: int) -> np.ndarray:
    """Return the number of entries in each segment (plain array)."""
    segment_ids = _check_segments(segment_ids, num_segments)
    return np.bincount(segment_ids, minlength=num_segments).astype(np.float64)


def segment_mean(values: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Per-segment mean; empty segments yield zero rows."""
    counts = segment_count(segment_ids, num_segments)
    safe = np.maximum(counts, 1.0)
    total = segment_sum(values, segment_ids, num_segments)
    inv = (1.0 / safe).reshape((num_segments,) + (1,) * (values.data.ndim - 1))
    return total * Tensor(inv)


def _segment_max_array(
    values: np.ndarray,
    segment_ids: np.ndarray,
    num_segments: int,
    order: "Optional[np.ndarray]" = None,
) -> np.ndarray:
    """Per-segment max via ``maximum.reduceat`` on sorted segment runs.

    Max is associative and exact, so the reduceat tree order cannot change
    the result — bit-identical to ``np.maximum.at`` (which has no fast
    path) at a fraction of the cost.  Empty segments return ``-inf``.
    """
    out = np.full((num_segments,) + values.shape[1:], -np.inf, dtype=np.float64)
    E = segment_ids.shape[0]
    if E == 0:
        return out
    if values.ndim == 1:
        np.maximum.at(out, segment_ids, values)  # 1-D indexed fast loop
        return out
    if order is None and not _is_nondecreasing(segment_ids):
        # Unsorted n-D: column-wise 1-D fast loops on an F-order copy.
        # Max is order-independent, so any evaluation order is exact.
        flat = np.asfortranarray(values.reshape(E, -1))
        out2 = out.reshape(num_segments, -1)
        buf = np.empty(num_segments, dtype=np.float64)
        for j in range(flat.shape[1]):
            buf.fill(-np.inf)
            np.maximum.at(buf, segment_ids, flat[:, j])
            out2[:, j] = buf
        return out
    if order is None:
        sids, svals = segment_ids, values
    else:
        sids, svals = segment_ids[order], values[order]
    starts = np.flatnonzero(np.r_[True, sids[1:] != sids[:-1]])
    out[sids[starts]] = np.maximum.reduceat(svals, starts, axis=0)
    return out


def segment_max(values: np.ndarray, segment_ids: np.ndarray, num_segments: int) -> np.ndarray:
    """Per-segment max of a plain array (non-differentiable by design).

    Used only as the numerical-stability shift inside
    :func:`segment_softmax` and the decomposed cross-device softmax — the
    softmax value is invariant to the shift, so detaching it keeps gradients
    exact.  Empty segments return ``-inf``.
    """
    segment_ids = _check_segments(segment_ids, num_segments)
    return _segment_max_array(values, segment_ids, num_segments)


def segment_softmax(scores: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Softmax of edge scores within each destination segment.

    This is GAT's ``edge_softmax``: for each destination node ``v`` the
    attention logits of its in-edges are normalized to sum to one.  Computed
    via the shift-invariant decomposition
    ``softmax(e) = exp(e - m_v) / sum exp(e - m_v)`` with the per-segment max
    ``m_v`` detached.  Attention scores have few heads, so both segment
    kernels take their column-wise fast paths — no segment sort is needed
    even though GAT's self-edge extension appends edges out of dst order.
    """
    segment_ids = _check_segments(segment_ids, num_segments)
    maxes = _segment_max_array(scores.data, segment_ids, num_segments)
    # Fused (scores - shift).exp(): one pass, one buffer.  IEEE subtraction
    # is addition of the negated operand, and the shift is detached, so
    # both the values and the adjoint (g * out) match the op-by-op chain
    # bit for bit.
    expd_data = np.subtract(scores.data, maxes[segment_ids])
    np.exp(expd_data, out=expd_data)

    def _exp_shift_backward(g: np.ndarray) -> None:
        if scores.requires_grad:
            scores._accumulate(g * expd_data)

    expd = Tensor._make(expd_data, (scores,), _exp_shift_backward, "exp_shift")
    denom = _segment_sum_tensor(expd, segment_ids, num_segments)
    # Gather per-edge denominator and divide.
    return expd / denom.index_rows(segment_ids)


class CSRMatrix:
    """An immutable CSR adjacency operand for :func:`spmm`.

    Wraps ``scipy.sparse.csr_matrix``; the transpose (needed only by the
    backward pass) is built lazily on first access, so forward-only and
    timing-only paths never pay for it.  The matrix itself is structural
    (not a differentiable quantity), matching how GNN frameworks treat
    sampled adjacencies.
    """

    __slots__ = ("mat", "_mat_t")

    def __init__(self, mat: sp.csr_matrix):
        self.mat = mat.tocsr()
        self._mat_t = None

    @property
    def mat_t(self) -> sp.csr_matrix:
        """``A^T`` in CSR form, built on first use and cached."""
        if self._mat_t is None:
            self._mat_t = self.mat.T.tocsr()
        return self._mat_t

    @classmethod
    def from_edges(
        cls,
        edge_dst: np.ndarray,
        edge_src: np.ndarray,
        shape: tuple,
        values: Optional[np.ndarray] = None,
    ) -> "CSRMatrix":
        """Build an ``(n_dst, n_src)`` CSR matrix from edge index arrays."""
        edge_dst = np.asarray(edge_dst, dtype=np.int64)
        edge_src = np.asarray(edge_src, dtype=np.int64)
        if values is None:
            values = np.ones(edge_dst.shape[0], dtype=np.float64)
        mat = sp.csr_matrix((values, (edge_dst, edge_src)), shape=shape)
        return cls(mat)

    @property
    def shape(self) -> tuple:
        return self.mat.shape

    @property
    def nnz(self) -> int:
        return self.mat.nnz


def spmm(adj: CSRMatrix, x: Tensor) -> Tensor:
    """Sparse-dense product ``adj @ x`` with autograd on the dense side.

    Backward: ``dX = adj^T @ dY`` (exact adjoint of a linear map).
    """
    if adj.shape[1] != x.data.shape[0]:
        raise ValueError(
            f"spmm shape mismatch: adj is {adj.shape}, x has "
            f"{x.data.shape[0]} rows"
        )
    out = adj.mat @ x.data

    def backward_fn(g: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(adj.mat_t @ g)

    return Tensor._make(out, (x,), backward_fn, "spmm")
