"""Cost-model drift detection for online re-planning.

APT plans once from dry-run statistics, but the quantities the cost model
consumed — link bandwidths, cache hit rates, access skew — can change
mid-run (a degraded Ethernet link, a straggling device, a shrunken cache).
The :class:`DriftDetector` watches the per-epoch *observed* strategy-
specific phase times and compares them against the planner's estimate for
the running strategy:

* ``t_build``   vs the timeline's ``sample`` phase (sampling + structure
  shuffling);
* ``t_load``    vs the ``load`` phase (feature reads);
* ``t_shuffle`` vs the ``shuffle`` phase (hidden-embedding exchange).

Each phase's error is normalized by the estimated *epoch* time — the
strategy-specific estimate total plus the observed common train phase —
not by the phase's own estimate: GDP's ``t_shuffle`` is exactly zero, and
a per-phase (or strategy-specific-only) denominator either divides by
zero or over-triggers on phases too small to matter once a large cache
shrinks them below the epoch-to-epoch sampling wobble.  A reading whose
worst normalized error exceeds ``threshold`` signals the planner to
re-run (with freshly profiled bandwidths) at the next epoch boundary.

The cost model itself is ~5%-accurate under stable conditions (Fig. 12),
and the timeline's per-batch barrier makes observed phase walls slightly
pessimistic versus the model's per-epoch maxima, so thresholds below ~0.15
risk spurious re-plans; the default 0.35 leaves a comfortable no-fault
margin while any realistic injected fault (2x or worse on a loaded link)
lands far above it.

Detection is *one-sided* by default: only phases running **slower** than
promised trigger a re-plan.  Running faster than the estimate is the
steady state on cache-heavy configurations (the dry-run profiles a cold
cache; the real run warms it), and a re-plan can never make a
faster-than-predicted run better — the planner would just re-confirm the
winner.  Pass ``one_sided=False`` to also trigger on improvements (e.g.
to switch back after a link recovers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping

#: timeline phase -> cost-model term observed against it
PHASE_TO_TERM = {
    "sample": "t_build",
    "load": "t_load",
    "shuffle": "t_shuffle",
}


@dataclass(frozen=True)
class DriftReading:
    """One epoch's observed-vs-estimated comparison."""

    epoch: int
    #: signed per-term error normalized by the total estimated time:
    #: ``(observed - estimated) / max(sum(estimates), floor)``
    per_term: Dict[str, float]
    observed: Dict[str, float]
    estimated: Dict[str, float]
    threshold: float
    max_abs: float = 0.0
    #: largest *positive* (slower-than-promised) normalized error
    max_over: float = 0.0
    worst_term: str = ""
    one_sided: bool = True

    @property
    def exceeded(self) -> bool:
        trigger = self.max_over if self.one_sided else self.max_abs
        return trigger > self.threshold

    def to_dict(self) -> Dict[str, Any]:
        return {
            "epoch": self.epoch,
            "per_term": dict(self.per_term),
            "observed": dict(self.observed),
            "estimated": dict(self.estimated),
            "threshold": self.threshold,
            "max_abs": self.max_abs,
            "max_over": self.max_over,
            "worst_term": self.worst_term,
            "one_sided": self.one_sided,
            "exceeded": self.exceeded,
        }


@dataclass
class DriftDetector:
    """Flags epochs whose phase times left the cost model's trust region.

    Parameters
    ----------
    threshold:
        Relative-error trigger; see the module docstring for calibration.
    floor_seconds:
        Lower bound on the normalizing denominator, guarding degenerate
        estimates (e.g. a strategy whose every term rounds to zero at tiny
        scale) from producing infinite drift.
    one_sided:
        When true (default), only slower-than-estimated phases trigger;
        see the module docstring.
    """

    threshold: float = 0.35
    floor_seconds: float = 1e-12
    one_sided: bool = True
    #: every reading taken, in order (observability into the detector)
    history: list = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.threshold <= 0.0:
            raise ValueError(f"threshold must be positive, got {self.threshold}")
        if self.floor_seconds <= 0.0:
            raise ValueError(
                f"floor_seconds must be positive, got {self.floor_seconds}"
            )

    # ------------------------------------------------------------------ #
    def reading(
        self,
        epoch: int,
        estimate: Any,
        observed_phases: Mapping[str, float],
    ) -> DriftReading:
        """Compare one epoch against the active estimate.

        ``estimate`` is a :class:`~repro.core.costmodel.CostEstimate` (or
        anything exposing ``t_build`` / ``t_load`` / ``t_shuffle``);
        ``observed_phases`` maps timeline phase names to that epoch's
        synchronized seconds (:meth:`Timeline.breakdown` deltas).
        """
        estimated = {
            term: float(getattr(estimate, term))
            for term in PHASE_TO_TERM.values()
        }
        observed = {
            PHASE_TO_TERM[phase]: float(observed_phases.get(phase, 0.0))
            for phase in PHASE_TO_TERM
        }
        # Normalize by the epoch, not just the strategy-specific terms:
        # the common train phase is observed, never estimated (the planner
        # excludes it), so fold the observation into the denominator.
        t_train = float(observed_phases.get("train", 0.0))
        denom = max(sum(estimated.values()) + t_train, self.floor_seconds)
        per_term = {
            term: (observed[term] - estimated[term]) / denom
            for term in estimated
        }
        worst_abs = max(per_term, key=lambda t: abs(per_term[t]))
        worst_over = max(per_term, key=lambda t: per_term[t])
        worst = worst_over if self.one_sided else worst_abs
        out = DriftReading(
            epoch=epoch,
            per_term=per_term,
            observed=observed,
            estimated=estimated,
            threshold=self.threshold,
            max_abs=abs(per_term[worst_abs]),
            max_over=max(per_term[worst_over], 0.0),
            worst_term=worst,
            one_sided=self.one_sided,
        )
        self.history.append(out)
        return out
