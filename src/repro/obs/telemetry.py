"""Structured runtime telemetry: typed events + per-device/phase counters.

A :class:`TelemetryCollector` is attached to an
:class:`~repro.engine.context.ExecutionContext` (and through it to the
:class:`~repro.cluster.timeline.Timeline` and
:class:`~repro.cluster.comm.Communicator`).  Producers call :meth:`count`
for scalar accumulators keyed by ``(name, device, phase)`` and
:meth:`emit` for discrete events (batch barriers, epoch ends, re-plans,
fault injections, strategy switches).

Telemetry is strictly off the simulated-time path: collectors never touch
the timeline, never charge seconds, and never draw random numbers — a run
with telemetry enabled produces bit-identical simulated times and losses
to one without.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Event kinds emitted by the built-in producers.
EVENT_KINDS = (
    "batch",      # Timeline barrier: one bulk-synchronous step completed
    "epoch",      # ParallelTrainer: one epoch finished (loss, phase times)
    "collective", # Communicator: one collective operation charged
    "replan",     # APT: drift crossed the threshold, planner re-ran
    "switch",     # APT: the running strategy was hot-swapped
    "fault",      # fault-injection layer: a scheduled fault took effect
    "profile",    # repro.utils.profile: one host wall-clock span closed
    "pipeline",   # ProcessPoolBackend: per-epoch prefetch/worker counters
    # -- fault tolerance (see DESIGN.md §5.11) ------------------------- #
    "chaos",          # HostFaultSchedule: a host fault directive armed
    "worker_error",   # supervisor/backend: a scoped worker exception
    "worker_timeout", # supervisor: task deadline expired (hang suspected)
    "worker_respawn", # supervisor: dead worker detected, pool respawned
    "slot_corrupt",   # supervisor: shm slot digest mismatch on receive
    "task_retry",     # supervisor: failed task resubmitted with backoff
    "degraded",       # backend: failure budget spent, serial fallback on
    "checkpoint",     # APT: epoch checkpoint written
    "resume",         # APT: run continued from an epoch checkpoint
    # -- serving (see DESIGN.md §5.13) --------------------------------- #
    "serve_batch",    # ServeEngine: one inference batch answered
    "serve_replan",   # ServeEngine: traffic drift crossed the threshold
    "serve_cache",    # ServeEngine: the hotness cache was re-keyed
    # -- elastic membership (see DESIGN.md §5.16) ----------------------- #
    "host_leave",     # APT: a machine left the cluster (spot reclaim)
    "host_join",      # APT: a machine joined the cluster
    "repartition",    # APT: graph re-partitioned for a new device set
    "elastic_replan", # APT: planner re-ran after a membership change
    "checkpoint_corrupt",  # CheckpointManager: bad checkpoint skipped
    # -- heterogeneity (see DESIGN.md §5.17) ---------------------------- #
    "device_imbalance",  # ParallelTrainer: per-epoch max/min busy ratio
    "pareto_select",     # APT.plan: chosen (time, $) point + dominated count
)


@dataclass(frozen=True)
class TelemetryEvent:
    """One typed entry of the event stream.

    ``sim_time`` is the simulated-seconds clock at emission (the producing
    timeline's wall), so events interleave correctly with the Chrome trace
    of the same run.
    """

    kind: str
    sim_time: float = 0.0
    epoch: Optional[int] = None
    device: Optional[int] = None
    phase: Optional[str] = None
    data: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.kind, "sim_time": self.sim_time}
        for key in ("epoch", "device", "phase"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if self.data:
            out["data"] = dict(self.data)
        return out


class TelemetryCollector:
    """Accumulates counters and events for one (or several) runs."""

    def __init__(self) -> None:
        #: ``(name, device, phase) -> accumulated value``
        self.counters: Dict[Tuple[str, Optional[int], Optional[str]], float] = {}
        self.events: List[TelemetryEvent] = []

    # ------------------------------------------------------------------ #
    # producers
    # ------------------------------------------------------------------ #
    def count(
        self,
        name: str,
        value: float = 1.0,
        *,
        device: Optional[int] = None,
        phase: Optional[str] = None,
    ) -> None:
        """Add ``value`` to the counter keyed by ``(name, device, phase)``."""
        key = (name, device, phase)
        self.counters[key] = self.counters.get(key, 0.0) + float(value)

    def emit(
        self,
        kind: str,
        *,
        sim_time: float = 0.0,
        epoch: Optional[int] = None,
        device: Optional[int] = None,
        phase: Optional[str] = None,
        **data: Any,
    ) -> TelemetryEvent:
        """Append a typed event to the stream and return it."""
        event = TelemetryEvent(
            kind=kind,
            sim_time=float(sim_time),
            epoch=epoch,
            device=device,
            phase=phase,
            data=data,
        )
        self.events.append(event)
        return event

    # ------------------------------------------------------------------ #
    # consumers
    # ------------------------------------------------------------------ #
    def counter_total(self, name: str) -> float:
        """Sum of one counter across all devices and phases."""
        return sum(v for (n, _, _), v in self.counters.items() if n == name)

    def events_of(self, kind: str) -> List[TelemetryEvent]:
        return [e for e in self.events if e.kind == kind]

    def summary(self) -> Dict[str, Any]:
        """Compact digest: counter totals plus event counts by kind.

        This is what :class:`~repro.core.report.RunReport` embeds — small
        enough to serialize with every run, while the full stream stays
        available via :meth:`to_json`.
        """
        totals: Dict[str, float] = {}
        for (name, _, _), value in self.counters.items():
            totals[name] = totals.get(name, 0.0) + value
        by_kind: Dict[str, int] = {}
        for event in self.events:
            by_kind[event.kind] = by_kind.get(event.kind, 0) + 1
        return {
            "counters": dict(sorted(totals.items())),
            "num_events": len(self.events),
            "events_by_kind": dict(sorted(by_kind.items())),
        }

    def to_dict(self) -> Dict[str, Any]:
        """Full export: every counter key and the whole event stream."""
        return {
            "counters": [
                {"name": n, "device": d, "phase": p, "value": v}
                for (n, d, p), v in sorted(
                    self.counters.items(),
                    key=lambda kv: (kv[0][0], kv[0][1] is not None, kv[0][1] or 0, kv[0][2] or ""),
                )
            ],
            "events": [e.to_dict() for e in self.events],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def to_chrome_trace(self) -> List[Dict[str, Any]]:
        """Events as Chrome-trace instants (merge with a Timeline trace).

        Batch/epoch/replan/switch/fault events become instant ("i") events
        on the device's thread (or globally scoped when device-less);
        counters are snapshotted once at the end as counter ("C") events.
        """
        trace: List[Dict[str, Any]] = []
        last = 0.0
        for event in self.events:
            last = max(last, event.sim_time)
            trace.append(
                {
                    "name": event.kind,
                    "ph": "i",
                    "ts": event.sim_time * 1e6,
                    "pid": 0,
                    "tid": event.device if event.device is not None else 0,
                    "s": "t" if event.device is not None else "g",
                    "args": {
                        k: v
                        for k, v in event.to_dict().items()
                        if k not in ("kind", "sim_time")
                    },
                }
            )
        for name, value in self.summary()["counters"].items():
            trace.append(
                {
                    "name": name,
                    "ph": "C",
                    "ts": last * 1e6,
                    "pid": 0,
                    "args": {name: value},
                }
            )
        return trace

    def merged(self, other: "TelemetryCollector") -> "TelemetryCollector":
        """New collector holding both runs' counters and events."""
        out = TelemetryCollector()
        for src in (self, other):
            for key, value in src.counters.items():
                out.counters[key] = out.counters.get(key, 0.0) + value
            out.events.extend(src.events)
        return out
