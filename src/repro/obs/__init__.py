"""Observability: runtime telemetry and cost-model drift detection.

The online-adaptivity loop (DESIGN.md §5) is built from three pieces:

* :mod:`~repro.obs.telemetry` — a structured, typed event stream plus
  per-device/per-phase counters that the :class:`~repro.cluster.timeline.
  Timeline`, the :class:`~repro.cluster.comm.Communicator`, and the four
  strategy executors emit into.  Telemetry is pure observation: it never
  charges simulated seconds, so enabling it cannot change epoch times;
* :mod:`~repro.obs.drift` — compares the per-epoch *observed* phase times
  (T_build / T_load / T_shuffle) against the cost model's estimates and
  flags when the relative error crosses a threshold, which is the signal
  :meth:`repro.core.apt.APT.run` uses to re-trigger the planner mid-run;
* :mod:`repro.cluster.faults` — the deterministic fault-injection layer
  that exercises the detector (it lives in ``repro.cluster`` because it
  transforms :class:`~repro.cluster.spec.ClusterSpec` objects).
"""

from repro.obs.telemetry import TelemetryCollector, TelemetryEvent
from repro.obs.drift import DriftDetector, DriftReading

__all__ = [
    "TelemetryCollector",
    "TelemetryEvent",
    "DriftDetector",
    "DriftReading",
]
