"""Unified feature store over the simulated memory hierarchy.

Mirrors APT §4.2 "Unified feature store": node features live in a hierarchy
of GPU cache / peer GPU (when fast inter-GPU links exist) / local CPU /
remote CPU; each strategy configures per-GPU caches with its own
hotness-based policy (§3.2 "Cache configuration"), and every feature read is
resolved through a feature map and charged to the timeline at the
corresponding link's bandwidth.
"""

from repro.featurestore.store import (
    LoadReport,
    Tier,
    UnifiedFeatureStore,
    coalesce_ranges,
    count_ranges,
    is_disk_backed,
    ranged_gather,
)
from repro.featurestore.cache import (
    cache_capacity_nodes,
    dnp_cache_nodes,
    hot_cache_nodes,
    snp_cache_nodes,
    unified_cache_nodes,
)

__all__ = [
    "UnifiedFeatureStore",
    "LoadReport",
    "Tier",
    "hot_cache_nodes",
    "unified_cache_nodes",
    "snp_cache_nodes",
    "dnp_cache_nodes",
    "cache_capacity_nodes",
    "is_disk_backed",
    "coalesce_ranges",
    "count_ranges",
    "ranged_gather",
]
