"""Hotness-based GPU cache policies, one per strategy (paper §3.2).

Given per-node access frequencies collected during dry-run:

* **GDP / NFP** cache the globally most popular nodes (identically on every
  GPU; NFP caches its 1/C dimension shard, so the same byte budget covers
  C times more nodes).
* **SNP** caches the most popular nodes *within the GPU's graph partition*.
* **DNP** caches the most popular nodes within the partition *plus its
  1-hop halo* — the input set a DNP GPU actually reads.

The rationale (quoted from the paper): "minimize the GPU-CPU communication
for feature read".
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph


def cache_capacity_nodes(
    cache_bytes: float, feature_dim: int, dim_fraction: float = 1.0
) -> int:
    """Number of nodes a byte budget holds at ``feature_dim * dim_fraction``
    float64 features per node (``dim_fraction < 1`` models NFP's shards)."""
    per_node = feature_dim * dim_fraction * 8.0
    if per_node <= 0:
        raise ValueError("feature_dim and dim_fraction must be positive")
    return int(cache_bytes // per_node)


def unified_cache_nodes(
    frequencies: np.ndarray, capacity_nodes: int, num_devices: int
) -> list:
    """DSP/Quiver-style unified cache: partition the hottest nodes.

    With fast inter-GPU links (NVLink), devices can serve each other's
    caches, so replicating the same hot set on every GPU wastes capacity.
    The unified policy instead stripes the ``capacity * num_devices``
    hottest nodes round-robin across the GPUs: the *union* cache is C
    times larger, and any GPU reaches any cached row in at most one peer
    hop.  The paper cites DSP and Quiver for this scheme and notes APT
    "can easily incorporate" such caching strategies — this is that
    incorporation (used by GDP/NFP when the cluster has NVLink).

    Returns one node array per device.
    """
    if capacity_nodes <= 0 or num_devices <= 0:
        return [np.empty(0, dtype=np.int64) for _ in range(max(num_devices, 0))]
    freq = np.asarray(frequencies, dtype=np.float64)
    total = min(capacity_nodes * num_devices, freq.size)
    top = np.argpartition(-freq, total - 1)[:total]
    # Stripe by hotness rank so every device holds a share of the hottest.
    ranked = top[np.argsort(-freq[top], kind="stable")]
    return [
        np.sort(ranked[d::num_devices].astype(np.int64))
        for d in range(num_devices)
    ]


def hot_cache_nodes(frequencies: np.ndarray, capacity_nodes: int) -> np.ndarray:
    """Top-``capacity`` nodes by access frequency (GDP and NFP policy)."""
    if capacity_nodes <= 0:
        return np.empty(0, dtype=np.int64)
    freq = np.asarray(frequencies, dtype=np.float64)
    capacity_nodes = min(capacity_nodes, freq.size)
    top = np.argpartition(-freq, capacity_nodes - 1)[:capacity_nodes]
    return np.sort(top.astype(np.int64))


def snp_cache_nodes(
    frequencies: np.ndarray, parts: np.ndarray, part: int, capacity_nodes: int
) -> np.ndarray:
    """Hottest nodes within one graph partition (SNP policy)."""
    members = np.nonzero(np.asarray(parts) == part)[0]
    return _hot_within(frequencies, members, capacity_nodes)


def dnp_cache_nodes(
    frequencies: np.ndarray,
    parts: np.ndarray,
    part: int,
    graph: CSRGraph,
    capacity_nodes: int,
) -> np.ndarray:
    """Hottest nodes within a partition plus its 1-hop halo (DNP policy)."""
    members = np.nonzero(np.asarray(parts) == part)[0]
    closure = graph.one_hop_closure(members)
    return _hot_within(frequencies, closure, capacity_nodes)


def _hot_within(
    frequencies: np.ndarray, candidates: np.ndarray, capacity_nodes: int
) -> np.ndarray:
    if capacity_nodes <= 0 or candidates.size == 0:
        return np.empty(0, dtype=np.int64)
    freq = np.asarray(frequencies, dtype=np.float64)[candidates]
    k = min(capacity_nodes, candidates.size)
    top = np.argpartition(-freq, k - 1)[:k]
    return np.sort(candidates[top].astype(np.int64))
