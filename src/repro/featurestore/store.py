"""The unified feature store: placement, feature map, and read accounting.

Resolution order for a feature read by GPU ``d`` (paper §4.2):

1. ``d``'s own GPU cache (HBM bandwidth — effectively free);
2. a peer GPU's cache on the same machine, *only when fast inter-GPU links
   (NVLink) exist* — the T4 preset has none, so this tier is inactive by
   default, exactly as on the paper's platform;
3. the local CPU's feature shard (PCIe UVA read);
4. a remote machine's CPU (shared NIC);
5. local NVMe storage (``Tier.DISK``) — active only for memory-mapped
   out-of-core datasets (DESIGN.md §5.14), where the feature matrix never
   fits in RAM and a row is CPU-resident only after hot-row promotion.

Every read returns the actual feature rows (for the real numerics) plus a
:class:`LoadReport`, and charges simulated load time at each tier's
bandwidth.  Disk reads are charged per *ranged read*: sorted node ids are
coalesced into contiguous runs and each run pays one setup latency, which
is also how :func:`ranged_gather` materializes them from the memmap.
"""

from __future__ import annotations

import contextlib
import enum
import os
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.spec import ClusterSpec
from repro.cluster.timeline import Timeline
from repro.graph.datasets import GraphDataset
from repro.tensor import arena

# Cross-device gather dedup (DESIGN.md §5.12): materialize the union of one
# global batch's per-device feature requests once, serve each device a view
# or positional re-gather of it.  Tier accounting is untouched — only the
# host-side row materialization is shared — so it is toggleable without any
# effect on simulated timelines or numerics.
_GATHER_DEDUP = os.environ.get("REPRO_GATHER_DEDUP", "1") != "0"


def gather_dedup_enabled() -> bool:
    """Whether shared-gather dedup is on (``REPRO_GATHER_DEDUP``, default on)."""
    return _GATHER_DEDUP


@contextlib.contextmanager
def gather_dedup(enabled: bool):
    """Force gather dedup on or off within a scope (tests / benchmarks)."""
    global _GATHER_DEDUP
    prev = _GATHER_DEDUP
    _GATHER_DEDUP = bool(enabled)
    try:
        yield
    finally:
        _GATHER_DEDUP = prev


def gather_rows(features: np.ndarray, node_ids: np.ndarray) -> np.ndarray:
    """The single definition of a dense feature gather.

    Both the in-process read path (:meth:`UnifiedFeatureStore.read`) and the
    worker-side prefetch gather (``repro.parallel.worker``) call this, so the
    produced rows are bit-identical regardless of which process materializes
    them.
    """
    return features[np.asarray(node_ids, dtype=np.int64)]


def is_disk_backed(features) -> bool:
    """Whether a feature matrix is memory-mapped (out-of-core) storage."""
    return isinstance(features, np.memmap)


#: Runs of sorted ids separated by at most this many rows are coalesced
#: into one ranged read (reading a few dead rows beats a second seek).
COALESCE_GAP = 8


def coalesce_ranges(sorted_ids: np.ndarray, gap: int = COALESCE_GAP) -> np.ndarray:
    """Coalesce sorted node ids into ``(start, stop)`` half-open row ranges.

    Consecutive ids whose spacing is ``<= gap`` share one range; the result
    is a ``(num_ranges, 2)`` int64 array.  The range count is the number of
    read requests an out-of-core gather issues (the ``messages`` term of
    the disk link's latency charge).
    """
    ids = np.asarray(sorted_ids, dtype=np.int64)
    if ids.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    breaks = np.flatnonzero(np.diff(ids) > gap) + 1
    starts = ids[np.concatenate(([0], breaks))]
    stops = ids[np.concatenate((breaks - 1, [ids.size - 1]))] + 1
    return np.stack([starts, stops], axis=1)


def count_ranges(node_ids: np.ndarray, gap: int = COALESCE_GAP) -> int:
    """Number of coalesced ranged reads needed to fetch ``node_ids``.

    Unsorted inputs are sorted first (the gather sorts too), so the count
    matches what :func:`ranged_gather` would actually issue.
    """
    ids = np.asarray(node_ids, dtype=np.int64)
    if ids.size == 0:
        return 0
    if ids.size > 1 and np.any(np.diff(ids) < 0):
        ids = np.sort(ids)
    return int(np.count_nonzero(np.diff(ids) > gap)) + 1


def ranged_gather(
    features: np.ndarray,
    sorted_ids: np.ndarray,
    out: Optional[np.ndarray] = None,
    gap: int = COALESCE_GAP,
) -> np.ndarray:
    """Gather rows from a (typically memmap-backed) matrix via ranged reads.

    Sorted unique ids are coalesced into contiguous runs and each run is
    read with one slice — sequential I/O instead of the page-by-page random
    access a fancy index performs on a memmap.  The produced rows are
    bit-identical to ``features[sorted_ids]`` (same bytes, different access
    pattern).  When the ids coalesce poorly (more than one range per four
    rows) the slice loop would dominate, so the gather falls back to one
    fancy index.
    """
    ids = np.asarray(sorted_ids, dtype=np.int64)
    shape = (ids.size,) + features.shape[1:]
    if out is None:
        out = np.empty(shape, dtype=features.dtype)
    if ids.size == 0:
        return out
    ranges = coalesce_ranges(ids, gap)
    if ranges.shape[0] * 4 > ids.size:
        out[...] = features[ids]
        return out
    pos = 0
    for start, stop in ranges:
        hi = pos + int(np.searchsorted(ids[pos:], stop))
        block = np.asarray(features[start:stop])
        out[pos:hi] = block[ids[pos:hi] - start]
        pos = hi
    return out


class Tier(enum.Enum):
    """Memory tier a feature row was served from."""

    GPU_CACHE = "gpu_cache"
    PEER_GPU = "peer_gpu"
    LOCAL_CPU = "local_cpu"
    REMOTE_CPU = "remote_cpu"
    #: Memory-mapped on-disk features (out-of-core datasets only): rows not
    #: promoted into a cache/CPU tier are read from local NVMe in coalesced
    #: ranged reads.
    DISK = "disk"


@dataclass
class LoadReport:
    """Per-tier accounting of one feature read.

    Tier dicts start empty and are filled lazily (absent tier = 0):
    ``read`` runs per device per batch, and the two eager dict
    comprehensions the constructor used to run showed up in the training
    hot path.  :meth:`charge_load` still populates every tier it
    classifies, so charged reports expose all four keys as before.
    """

    rows: Dict[Tier, int] = field(default_factory=dict)
    bytes: Dict[Tier, float] = field(default_factory=dict)
    seconds: float = 0.0
    #: coalesced read requests issued against the disk tier (0 unless the
    #: store serves a memory-mapped out-of-core dataset)
    ranged_reads: int = 0

    def total_rows(self) -> int:
        return sum(self.rows.values())

    def hit_rate(self) -> float:
        """Fraction of rows served from this GPU's own cache."""
        total = self.total_rows()
        return self.rows.get(Tier.GPU_CACHE, 0) / total if total else 0.0

    def disk_rows(self) -> int:
        return int(self.rows.get(Tier.DISK, 0))

    def disk_bytes(self) -> float:
        return float(self.bytes.get(Tier.DISK, 0.0))

    def merge(self, other: "LoadReport") -> None:
        for t, v in other.rows.items():
            self.rows[t] = self.rows.get(t, 0) + v
        for t, v in other.bytes.items():
            self.bytes[t] = self.bytes.get(t, 0.0) + v
        self.seconds += other.seconds
        self.ranged_reads += other.ranged_reads


class UnifiedFeatureStore:
    """Feature placement plus cached-read accounting for all strategies.

    Parameters
    ----------
    dataset:
        Provides the feature matrix and graph.
    cluster:
        Hardware model; supplies tier bandwidths and the cache byte budget.
    node_machine:
        ``(num_nodes,)`` machine index holding each node's features in CPU
        memory.  With one machine this is all zeros.  Benchmarks pass a
        METIS-grouped assignment, mirroring the paper's data layout step.
    """

    def __init__(
        self,
        dataset: GraphDataset,
        cluster: ClusterSpec,
        node_machine: Optional[np.ndarray] = None,
        *,
        disk_promote_bytes: Optional[float] = None,
    ):
        self.dataset = dataset
        self.cluster = cluster
        n = dataset.num_nodes
        if node_machine is None:
            node_machine = np.zeros(n, dtype=np.int64)
        node_machine = np.asarray(node_machine, dtype=np.int64)
        if node_machine.shape != (n,):
            raise ValueError(f"node_machine shape {node_machine.shape} != ({n},)")
        if node_machine.size and node_machine.max() >= cluster.num_machines:
            raise ValueError("node_machine references a machine beyond the cluster")
        self.node_machine = node_machine
        C = cluster.num_devices
        # Per-device boolean cache membership.
        self._cached = np.zeros((C, n), dtype=bool)
        #: Dimension fraction each device reads (1.0 except under NFP).
        self.dim_fraction = 1.0
        # Shared-gather scope state (see begin_shared_gather).
        self._shared_uniq: Optional[np.ndarray] = None
        self._shared_rows: Optional[np.ndarray] = None
        # Disk-tier state (inactive for in-RAM datasets): position of each
        # node's row in the promoted CPU-resident buffer, -1 = on disk.
        self._disk_pos: Optional[np.ndarray] = None
        self._disk_rows_buf: Optional[np.ndarray] = None
        self._disk_hot: Optional[np.ndarray] = None
        self._promote_capacity = 0
        self._promote_every = 0
        self._disk_classify_calls = 0
        #: cumulative disk-tier counters (telemetry / `repro trace`)
        self.disk_stats: Dict[str, float] = {
            "rows": 0.0,
            "bytes": 0.0,
            "ranged_reads": 0.0,
            "promotions": 0.0,
            "refreshes": 0.0,
        }
        if is_disk_backed(dataset.features):
            self.configure_disk_tier(promote_bytes=disk_promote_bytes)

    # ------------------------------------------------------------------ #
    # configuration
    # ------------------------------------------------------------------ #
    def configure_caches(
        self, cached_nodes: Sequence[np.ndarray], dim_fraction: float = 1.0
    ) -> None:
        """Install per-device cache node sets (from a §3.2 cache policy)."""
        C = self.cluster.num_devices
        if len(cached_nodes) != C:
            raise ValueError(f"need {C} cache sets, got {len(cached_nodes)}")
        if not 0.0 < dim_fraction <= 1.0:
            raise ValueError(f"dim_fraction must be in (0, 1], got {dim_fraction}")
        self._cached[:] = False
        for d, nodes in enumerate(cached_nodes):
            if np.asarray(nodes).size:
                self._cached[d, np.asarray(nodes, dtype=np.int64)] = True
        self.dim_fraction = float(dim_fraction)

    def cached_node_count(self, device: int) -> int:
        return int(self._cached[device].sum())

    # ------------------------------------------------------------------ #
    # disk tier (out-of-core datasets, DESIGN.md §5.14)
    # ------------------------------------------------------------------ #
    @property
    def disk_tier_active(self) -> bool:
        return self._disk_pos is not None

    def configure_disk_tier(
        self,
        *,
        promote_bytes: Optional[float] = None,
        promote_every: int = 32,
        decay: float = 0.5,
        resident_nodes: Optional[np.ndarray] = None,
    ) -> None:
        """Activate the disk tier: rows live on disk until promoted.

        ``promote_bytes`` bounds the CPU-resident side buffer holding
        promoted hot rows (default ``REPRO_DISK_PROMOTE_MB``, 64 MiB);
        every ``promote_every`` disk-touching classifies the hottest rows
        are re-promoted from decayed access counts — the same
        decayed-hotness scheme :class:`repro.serve.cache.HotnessCache`
        uses for the GPU tier.  ``resident_nodes`` pins rows CPU-resident
        up front (e.g. the training seeds).  Promotion moves rows between
        *tiers*, never changes their values, so losses stay bit-identical
        to an in-RAM store.
        """
        n = self.dataset.num_nodes
        if promote_bytes is None:
            promote_bytes = (
                float(os.environ.get("REPRO_DISK_PROMOTE_MB", "64")) * 2**20
            )
        row_bytes = max(self.dataset.feature_dim * 8, 1)
        self._promote_capacity = max(int(promote_bytes // row_bytes), 0)
        self._promote_every = max(int(promote_every), 1)
        self._disk_decay = float(decay)
        self._disk_pos = np.full(n, -1, dtype=np.int64)
        self._disk_hot = np.zeros(n, dtype=np.float64)
        self._disk_rows_buf = None
        self._disk_classify_calls = 0
        if resident_nodes is not None and np.asarray(resident_nodes).size:
            pinned = np.unique(np.asarray(resident_nodes, dtype=np.int64))
            pinned = pinned[: self._promote_capacity] if self._promote_capacity else pinned[:0]
            self._install_resident(pinned)

    def disable_disk_tier(self) -> None:
        """Deactivate the disk tier (every row counts as CPU-resident)."""
        self._disk_pos = None
        self._disk_rows_buf = None
        self._disk_hot = None

    def _install_resident(self, nodes: np.ndarray) -> None:
        """Replace the promoted set with ``nodes`` (sorted unique ids)."""
        assert self._disk_pos is not None
        self._disk_pos.fill(-1)
        if nodes.size == 0:
            self._disk_rows_buf = None
            return
        self._disk_pos[nodes] = np.arange(nodes.size, dtype=np.int64)
        # Copy the promoted rows off disk in one coalesced pass; the copies
        # are the same bytes, so served values never depend on residency.
        self._disk_rows_buf = ranged_gather(self.dataset.features, nodes)

    def _observe_disk(self, disk_ids: np.ndarray) -> None:
        """Count disk accesses; periodically re-promote the hottest rows."""
        if disk_ids.size:
            np.add.at(self._disk_hot, disk_ids, 1.0)
        self._disk_classify_calls += 1
        if (
            self._promote_capacity > 0
            and self._disk_classify_calls % self._promote_every == 0
            and self._disk_hot.max() > 0.0
        ):
            self._promote_hot_rows()

    def _promote_hot_rows(self) -> None:
        from repro.featurestore.cache import hot_cache_nodes

        hot = hot_cache_nodes(self._disk_hot, self._promote_capacity)
        hot = hot[self._disk_hot[hot] > 0.0]
        before = self._disk_pos[hot] >= 0
        self._install_resident(hot)
        self._disk_hot *= self._disk_decay
        self.disk_stats["promotions"] += float(np.count_nonzero(~before))
        self.disk_stats["refreshes"] += 1.0

    def disk_resident_count(self) -> int:
        """Number of rows currently promoted CPU-resident."""
        if self._disk_pos is None:
            return self.dataset.num_nodes
        return int(np.count_nonzero(self._disk_pos >= 0))

    def _materialize(
        self, node_ids: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Rows for ``node_ids``, bit-identical to ``features[node_ids]``.

        For in-RAM stores this is a plain gather.  With the disk tier
        active, promoted rows come from the resident buffer (copies of the
        same bytes) and the rest from the memmap via coalesced ranged
        reads — the chunked row-gather fast path.
        """
        features = self.dataset.features
        ids = np.asarray(node_ids, dtype=np.int64)
        if self._disk_pos is None:
            if out is None:
                return gather_rows(features, ids)
            np.take(features, ids, axis=0, out=out)
            return out
        if out is None:
            out = np.empty((ids.size,) + features.shape[1:], dtype=features.dtype)
        if ids.size == 0:
            return out
        pos = self._disk_pos[ids]
        hit = pos >= 0
        if hit.any():
            out[hit] = self._disk_rows_buf[pos[hit]]
        n_miss = int(ids.size - np.count_nonzero(hit))
        if n_miss:
            miss_idx = np.flatnonzero(~hit)
            miss_ids = ids[miss_idx]
            order = np.argsort(miss_ids, kind="stable")
            rows = ranged_gather(features, miss_ids[order])
            out[miss_idx[order]] = rows
        return out

    # ------------------------------------------------------------------ #
    # shared gather (cross-device dedup, one global batch at a time)
    # ------------------------------------------------------------------ #
    def begin_shared_gather(
        self, requests: Sequence[Optional[np.ndarray]]
    ) -> Optional[Tuple[int, int]]:
        """Materialize the union of per-device row requests once.

        ``requests`` is the strategy's per-device load sets for one global
        batch (``None`` entries allowed).  Until :meth:`end_shared_gather`,
        :meth:`read` serves any subset of the union from the staged buffer
        — the exact-match case (NFP's shared union read) is zero-copy, the
        general case a positional re-gather.  Served rows are bit-identical
        to a direct ``gather_rows`` (row copies of the same float64 data).

        Returns ``(requested_rows, unique_rows)`` for telemetry, or ``None``
        when there is nothing to stage.  Tier accounting is unaffected:
        :meth:`charge_load` still runs per device on the original ids.
        """
        reqs = [
            np.asarray(r, dtype=np.int64)
            for r in requests
            if r is not None and np.asarray(r).size
        ]
        if not reqs:
            return None
        total = int(sum(r.size for r in reqs))
        uniq = np.unique(np.concatenate(reqs)) if len(reqs) > 1 else np.unique(reqs[0])
        features = self.dataset.features
        buf = arena.take((uniq.size,) + features.shape[1:], features.dtype)
        if buf is None:
            buf = np.empty((uniq.size,) + features.shape[1:], dtype=features.dtype)
        self._materialize(uniq, out=buf)
        self._shared_uniq = uniq
        self._shared_rows = buf
        return total, int(uniq.size)

    def end_shared_gather(self) -> None:
        """Close the shared-gather scope and recycle the staging buffer.

        Callers must not hold views of the staged rows past this point
        (the trainer closes the scope only after backward/step/zero_grad,
        when the batch's tensors are dead).
        """
        buf = self._shared_rows
        self._shared_rows = None
        self._shared_uniq = None
        arena.release(buf)

    def shared_rows(self) -> Optional[np.ndarray]:
        """The staged union buffer, or ``None`` outside a gather scope."""
        return self._shared_rows

    def shared_positions(self, node_ids: np.ndarray) -> Optional[np.ndarray]:
        """Positions of ``node_ids`` within the staged union, or ``None``.

        When not ``None``, ``shared_rows()[pos]`` is bitwise equal to
        ``gather_rows(features, node_ids)`` — callers that can consume the
        union buffer through an index indirection (GDP's ``src_index``
        path) avoid materializing their per-device row block entirely.
        """
        if self._shared_uniq is None:
            return None
        uniq = self._shared_uniq
        ids = np.asarray(node_ids, dtype=np.int64)
        pos = np.searchsorted(uniq, ids)
        if ids.size and (
            pos.max() >= uniq.size or not np.array_equal(uniq[pos], ids)
        ):
            return None
        return pos

    def _shared_lookup(self, node_ids: np.ndarray) -> Optional[np.ndarray]:
        """Rows for ``node_ids`` from the staged union, or ``None``."""
        uniq = self._shared_uniq
        ids = np.asarray(node_ids, dtype=np.int64)
        if ids.size == uniq.size and (
            ids.size == 0 or (ids[0] == uniq[0] and np.array_equal(ids, uniq))
        ):
            return self._shared_rows  # the union itself: zero-copy
        pos = np.searchsorted(uniq, ids)
        if ids.size and (
            pos.max() >= uniq.size or not np.array_equal(uniq[pos], ids)
        ):
            return None  # ids outside the staged union: direct gather
        return self._shared_rows[pos]

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #
    def classify(self, device: int, node_ids: np.ndarray) -> Dict[Tier, np.ndarray]:
        """Split ``node_ids`` by the tier device ``device`` reads them from."""
        node_ids = np.asarray(node_ids, dtype=np.int64)
        out: Dict[Tier, np.ndarray] = {}
        own_hit = self._cached[device, node_ids]
        out[Tier.GPU_CACHE] = node_ids[own_hit]
        rest = node_ids[~own_hit]

        machine = self.cluster.machine_of(device)
        mspec = self.cluster.machine_spec(device)
        if mspec.nvlink is not None and rest.size:
            peers = [
                d
                for d in self.cluster.devices_of_machine(machine)
                if d != device
            ]
            if peers:
                # np.ix_ gathers only the (peers, rest) submatrix; chained
                # indexing would copy every peer's full cache row first.
                peer_hit = self._cached[np.ix_(peers, rest)].any(axis=0)
            else:
                peer_hit = np.zeros(rest.size, dtype=bool)
            out[Tier.PEER_GPU] = rest[peer_hit]
            rest = rest[~peer_hit]
        else:
            out[Tier.PEER_GPU] = np.empty(0, dtype=np.int64)

        if self._disk_pos is not None and rest.size:
            # CPU tiers hold only promoted rows; the rest hit local NVMe.
            on_disk = self._disk_pos[rest] < 0
            out[Tier.DISK] = rest[on_disk]
            rest = rest[~on_disk]
            self._observe_disk(out[Tier.DISK])
        else:
            out[Tier.DISK] = np.empty(0, dtype=np.int64)
            if self._disk_pos is not None:
                self._observe_disk(out[Tier.DISK])

        local = self.node_machine[rest] == machine
        out[Tier.LOCAL_CPU] = rest[local]
        out[Tier.REMOTE_CPU] = rest[~local]
        return out

    def read(
        self,
        device: int,
        node_ids: np.ndarray,
        timeline: Optional[Timeline] = None,
        phase: str = "load",
    ) -> tuple:
        """Fetch feature rows for ``node_ids`` on ``device``.

        Returns ``(features, report)`` where ``features`` is the dense
        ``(len(node_ids), feature_dim)`` array (full dimensionality — NFP
        slices its shard afterwards) and ``report`` the tier accounting.
        Simulated load seconds are charged to ``timeline`` when given.
        """
        report = self.charge_load(device, node_ids, timeline, phase)
        features = None
        if self._shared_uniq is not None:
            features = self._shared_lookup(node_ids)
        if features is None:
            features = self._materialize(node_ids)
        return features, report

    def charge_load(
        self,
        device: int,
        node_ids: np.ndarray,
        timeline: Optional[Timeline] = None,
        phase: str = "load",
    ) -> LoadReport:
        """The accounting half of :meth:`read` — no data is materialized.

        Used by timing-only execution (performance benchmarks) where the
        simulated load time matters but the feature values do not.
        """
        node_ids = np.asarray(node_ids, dtype=np.int64)
        split = self.classify(device, node_ids)
        row_bytes = self.dataset.feature_dim * 8.0 * self.dim_fraction

        mspec = self.cluster.machine_spec(device)
        dspec = self.cluster.device_spec(device)
        tier_links = {
            Tier.GPU_CACHE: None,  # HBM — charged at memory bandwidth
            Tier.PEER_GPU: mspec.gpu_peer_link(),
            Tier.LOCAL_CPU: mspec.pcie,
            Tier.REMOTE_CPU: self.cluster.inter_machine_link_per_gpu(device),
            Tier.DISK: mspec.disk,
        }
        report = LoadReport()
        for tier, ids in split.items():
            nbytes = ids.size * row_bytes
            report.rows[tier] = int(ids.size)
            report.bytes[tier] = nbytes
            if ids.size == 0:
                continue
            link = tier_links[tier]
            if link is None:
                report.seconds += dspec.memory_bound_seconds(nbytes)
            elif tier is Tier.DISK:
                # One setup latency per coalesced ranged read, not per bulk
                # transfer — scattered reads pay for their seeks.
                nranges = count_ranges(ids)
                report.ranged_reads += nranges
                report.seconds += link.seconds(nbytes, messages=nranges)
                self.disk_stats["rows"] += float(ids.size)
                self.disk_stats["bytes"] += float(nbytes)
                self.disk_stats["ranged_reads"] += float(nranges)
            else:
                report.seconds += link.seconds(nbytes, messages=1)
        if timeline is not None:
            timeline.charge(device, phase, report.seconds)
        return report

    # ------------------------------------------------------------------ #
    def estimate_load_seconds(
        self, device: int, rows_per_tier: Dict[Tier, float]
    ) -> float:
        """Cost-model helper: load time for hypothetical per-tier row counts.

        Used by the APT planner, which knows expected tier row counts from
        dry-run statistics without performing the reads.
        """
        row_bytes = self.dataset.feature_dim * 8.0 * self.dim_fraction
        mspec = self.cluster.machine_spec(device)
        dspec = self.cluster.device_spec(device)
        total = 0.0
        for tier, rows in rows_per_tier.items():
            nbytes = rows * row_bytes
            if nbytes <= 0:
                continue
            if tier is Tier.GPU_CACHE:
                total += dspec.memory_bound_seconds(nbytes)
            elif tier is Tier.PEER_GPU:
                total += mspec.gpu_peer_link().seconds(nbytes)
            elif tier is Tier.LOCAL_CPU:
                total += mspec.pcie.seconds(nbytes)
            elif tier is Tier.DISK:
                total += mspec.disk.seconds(nbytes)
            else:
                total += self.cluster.inter_machine_link_per_gpu(device).seconds(nbytes)
        return total
