"""The unified feature store: placement, feature map, and read accounting.

Resolution order for a feature read by GPU ``d`` (paper §4.2):

1. ``d``'s own GPU cache (HBM bandwidth — effectively free);
2. a peer GPU's cache on the same machine, *only when fast inter-GPU links
   (NVLink) exist* — the T4 preset has none, so this tier is inactive by
   default, exactly as on the paper's platform;
3. the local CPU's feature shard (PCIe UVA read);
4. a remote machine's CPU (shared NIC).

Every read returns the actual feature rows (for the real numerics) plus a
:class:`LoadReport`, and charges simulated load time at each tier's
bandwidth.
"""

from __future__ import annotations

import contextlib
import enum
import os
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.spec import ClusterSpec
from repro.cluster.timeline import Timeline
from repro.graph.datasets import GraphDataset
from repro.tensor import arena

# Cross-device gather dedup (DESIGN.md §5.12): materialize the union of one
# global batch's per-device feature requests once, serve each device a view
# or positional re-gather of it.  Tier accounting is untouched — only the
# host-side row materialization is shared — so it is toggleable without any
# effect on simulated timelines or numerics.
_GATHER_DEDUP = os.environ.get("REPRO_GATHER_DEDUP", "1") != "0"


def gather_dedup_enabled() -> bool:
    """Whether shared-gather dedup is on (``REPRO_GATHER_DEDUP``, default on)."""
    return _GATHER_DEDUP


@contextlib.contextmanager
def gather_dedup(enabled: bool):
    """Force gather dedup on or off within a scope (tests / benchmarks)."""
    global _GATHER_DEDUP
    prev = _GATHER_DEDUP
    _GATHER_DEDUP = bool(enabled)
    try:
        yield
    finally:
        _GATHER_DEDUP = prev


def gather_rows(features: np.ndarray, node_ids: np.ndarray) -> np.ndarray:
    """The single definition of a dense feature gather.

    Both the in-process read path (:meth:`UnifiedFeatureStore.read`) and the
    worker-side prefetch gather (``repro.parallel.worker``) call this, so the
    produced rows are bit-identical regardless of which process materializes
    them.
    """
    return features[np.asarray(node_ids, dtype=np.int64)]


class Tier(enum.Enum):
    """Memory tier a feature row was served from."""

    GPU_CACHE = "gpu_cache"
    PEER_GPU = "peer_gpu"
    LOCAL_CPU = "local_cpu"
    REMOTE_CPU = "remote_cpu"


@dataclass
class LoadReport:
    """Per-tier accounting of one feature read.

    Tier dicts start empty and are filled lazily (absent tier = 0):
    ``read`` runs per device per batch, and the two eager dict
    comprehensions the constructor used to run showed up in the training
    hot path.  :meth:`charge_load` still populates every tier it
    classifies, so charged reports expose all four keys as before.
    """

    rows: Dict[Tier, int] = field(default_factory=dict)
    bytes: Dict[Tier, float] = field(default_factory=dict)
    seconds: float = 0.0

    def total_rows(self) -> int:
        return sum(self.rows.values())

    def hit_rate(self) -> float:
        """Fraction of rows served from this GPU's own cache."""
        total = self.total_rows()
        return self.rows.get(Tier.GPU_CACHE, 0) / total if total else 0.0

    def merge(self, other: "LoadReport") -> None:
        for t, v in other.rows.items():
            self.rows[t] = self.rows.get(t, 0) + v
        for t, v in other.bytes.items():
            self.bytes[t] = self.bytes.get(t, 0.0) + v
        self.seconds += other.seconds


class UnifiedFeatureStore:
    """Feature placement plus cached-read accounting for all strategies.

    Parameters
    ----------
    dataset:
        Provides the feature matrix and graph.
    cluster:
        Hardware model; supplies tier bandwidths and the cache byte budget.
    node_machine:
        ``(num_nodes,)`` machine index holding each node's features in CPU
        memory.  With one machine this is all zeros.  Benchmarks pass a
        METIS-grouped assignment, mirroring the paper's data layout step.
    """

    def __init__(
        self,
        dataset: GraphDataset,
        cluster: ClusterSpec,
        node_machine: Optional[np.ndarray] = None,
    ):
        self.dataset = dataset
        self.cluster = cluster
        n = dataset.num_nodes
        if node_machine is None:
            node_machine = np.zeros(n, dtype=np.int64)
        node_machine = np.asarray(node_machine, dtype=np.int64)
        if node_machine.shape != (n,):
            raise ValueError(f"node_machine shape {node_machine.shape} != ({n},)")
        if node_machine.size and node_machine.max() >= cluster.num_machines:
            raise ValueError("node_machine references a machine beyond the cluster")
        self.node_machine = node_machine
        C = cluster.num_devices
        # Per-device boolean cache membership.
        self._cached = np.zeros((C, n), dtype=bool)
        #: Dimension fraction each device reads (1.0 except under NFP).
        self.dim_fraction = 1.0
        # Shared-gather scope state (see begin_shared_gather).
        self._shared_uniq: Optional[np.ndarray] = None
        self._shared_rows: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # configuration
    # ------------------------------------------------------------------ #
    def configure_caches(
        self, cached_nodes: Sequence[np.ndarray], dim_fraction: float = 1.0
    ) -> None:
        """Install per-device cache node sets (from a §3.2 cache policy)."""
        C = self.cluster.num_devices
        if len(cached_nodes) != C:
            raise ValueError(f"need {C} cache sets, got {len(cached_nodes)}")
        if not 0.0 < dim_fraction <= 1.0:
            raise ValueError(f"dim_fraction must be in (0, 1], got {dim_fraction}")
        self._cached[:] = False
        for d, nodes in enumerate(cached_nodes):
            if np.asarray(nodes).size:
                self._cached[d, np.asarray(nodes, dtype=np.int64)] = True
        self.dim_fraction = float(dim_fraction)

    def cached_node_count(self, device: int) -> int:
        return int(self._cached[device].sum())

    # ------------------------------------------------------------------ #
    # shared gather (cross-device dedup, one global batch at a time)
    # ------------------------------------------------------------------ #
    def begin_shared_gather(
        self, requests: Sequence[Optional[np.ndarray]]
    ) -> Optional[Tuple[int, int]]:
        """Materialize the union of per-device row requests once.

        ``requests`` is the strategy's per-device load sets for one global
        batch (``None`` entries allowed).  Until :meth:`end_shared_gather`,
        :meth:`read` serves any subset of the union from the staged buffer
        — the exact-match case (NFP's shared union read) is zero-copy, the
        general case a positional re-gather.  Served rows are bit-identical
        to a direct ``gather_rows`` (row copies of the same float64 data).

        Returns ``(requested_rows, unique_rows)`` for telemetry, or ``None``
        when there is nothing to stage.  Tier accounting is unaffected:
        :meth:`charge_load` still runs per device on the original ids.
        """
        reqs = [
            np.asarray(r, dtype=np.int64)
            for r in requests
            if r is not None and np.asarray(r).size
        ]
        if not reqs:
            return None
        total = int(sum(r.size for r in reqs))
        uniq = np.unique(np.concatenate(reqs)) if len(reqs) > 1 else np.unique(reqs[0])
        features = self.dataset.features
        buf = arena.take((uniq.size,) + features.shape[1:], features.dtype)
        if buf is None:
            buf = np.empty((uniq.size,) + features.shape[1:], dtype=features.dtype)
        np.take(features, uniq, axis=0, out=buf)
        self._shared_uniq = uniq
        self._shared_rows = buf
        return total, int(uniq.size)

    def end_shared_gather(self) -> None:
        """Close the shared-gather scope and recycle the staging buffer.

        Callers must not hold views of the staged rows past this point
        (the trainer closes the scope only after backward/step/zero_grad,
        when the batch's tensors are dead).
        """
        buf = self._shared_rows
        self._shared_rows = None
        self._shared_uniq = None
        arena.release(buf)

    def shared_rows(self) -> Optional[np.ndarray]:
        """The staged union buffer, or ``None`` outside a gather scope."""
        return self._shared_rows

    def shared_positions(self, node_ids: np.ndarray) -> Optional[np.ndarray]:
        """Positions of ``node_ids`` within the staged union, or ``None``.

        When not ``None``, ``shared_rows()[pos]`` is bitwise equal to
        ``gather_rows(features, node_ids)`` — callers that can consume the
        union buffer through an index indirection (GDP's ``src_index``
        path) avoid materializing their per-device row block entirely.
        """
        if self._shared_uniq is None:
            return None
        uniq = self._shared_uniq
        ids = np.asarray(node_ids, dtype=np.int64)
        pos = np.searchsorted(uniq, ids)
        if ids.size and (
            pos.max() >= uniq.size or not np.array_equal(uniq[pos], ids)
        ):
            return None
        return pos

    def _shared_lookup(self, node_ids: np.ndarray) -> Optional[np.ndarray]:
        """Rows for ``node_ids`` from the staged union, or ``None``."""
        uniq = self._shared_uniq
        ids = np.asarray(node_ids, dtype=np.int64)
        if ids.size == uniq.size and (
            ids.size == 0 or (ids[0] == uniq[0] and np.array_equal(ids, uniq))
        ):
            return self._shared_rows  # the union itself: zero-copy
        pos = np.searchsorted(uniq, ids)
        if ids.size and (
            pos.max() >= uniq.size or not np.array_equal(uniq[pos], ids)
        ):
            return None  # ids outside the staged union: direct gather
        return self._shared_rows[pos]

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #
    def classify(self, device: int, node_ids: np.ndarray) -> Dict[Tier, np.ndarray]:
        """Split ``node_ids`` by the tier device ``device`` reads them from."""
        node_ids = np.asarray(node_ids, dtype=np.int64)
        out: Dict[Tier, np.ndarray] = {}
        own_hit = self._cached[device, node_ids]
        out[Tier.GPU_CACHE] = node_ids[own_hit]
        rest = node_ids[~own_hit]

        machine = self.cluster.machine_of(device)
        mspec = self.cluster.machine_spec(device)
        if mspec.nvlink is not None and rest.size:
            peers = [
                d
                for d in self.cluster.devices_of_machine(machine)
                if d != device
            ]
            if peers:
                # np.ix_ gathers only the (peers, rest) submatrix; chained
                # indexing would copy every peer's full cache row first.
                peer_hit = self._cached[np.ix_(peers, rest)].any(axis=0)
            else:
                peer_hit = np.zeros(rest.size, dtype=bool)
            out[Tier.PEER_GPU] = rest[peer_hit]
            rest = rest[~peer_hit]
        else:
            out[Tier.PEER_GPU] = np.empty(0, dtype=np.int64)

        local = self.node_machine[rest] == machine
        out[Tier.LOCAL_CPU] = rest[local]
        out[Tier.REMOTE_CPU] = rest[~local]
        return out

    def read(
        self,
        device: int,
        node_ids: np.ndarray,
        timeline: Optional[Timeline] = None,
        phase: str = "load",
    ) -> tuple:
        """Fetch feature rows for ``node_ids`` on ``device``.

        Returns ``(features, report)`` where ``features`` is the dense
        ``(len(node_ids), feature_dim)`` array (full dimensionality — NFP
        slices its shard afterwards) and ``report`` the tier accounting.
        Simulated load seconds are charged to ``timeline`` when given.
        """
        report = self.charge_load(device, node_ids, timeline, phase)
        features = None
        if self._shared_uniq is not None:
            features = self._shared_lookup(node_ids)
        if features is None:
            features = gather_rows(self.dataset.features, node_ids)
        return features, report

    def charge_load(
        self,
        device: int,
        node_ids: np.ndarray,
        timeline: Optional[Timeline] = None,
        phase: str = "load",
    ) -> LoadReport:
        """The accounting half of :meth:`read` — no data is materialized.

        Used by timing-only execution (performance benchmarks) where the
        simulated load time matters but the feature values do not.
        """
        node_ids = np.asarray(node_ids, dtype=np.int64)
        split = self.classify(device, node_ids)
        row_bytes = self.dataset.feature_dim * 8.0 * self.dim_fraction

        mspec = self.cluster.machine_spec(device)
        dspec = self.cluster.device_spec(device)
        tier_links = {
            Tier.GPU_CACHE: None,  # HBM — charged at memory bandwidth
            Tier.PEER_GPU: mspec.gpu_peer_link(),
            Tier.LOCAL_CPU: mspec.pcie,
            Tier.REMOTE_CPU: self.cluster.inter_machine_link_per_gpu(device),
        }
        report = LoadReport()
        for tier, ids in split.items():
            nbytes = ids.size * row_bytes
            report.rows[tier] = int(ids.size)
            report.bytes[tier] = nbytes
            if ids.size == 0:
                continue
            link = tier_links[tier]
            if link is None:
                report.seconds += dspec.memory_bound_seconds(nbytes)
            else:
                report.seconds += link.seconds(nbytes, messages=1)
        if timeline is not None:
            timeline.charge(device, phase, report.seconds)
        return report

    # ------------------------------------------------------------------ #
    def estimate_load_seconds(
        self, device: int, rows_per_tier: Dict[Tier, float]
    ) -> float:
        """Cost-model helper: load time for hypothetical per-tier row counts.

        Used by the APT planner, which knows expected tier row counts from
        dry-run statistics without performing the reads.
        """
        row_bytes = self.dataset.feature_dim * 8.0 * self.dim_fraction
        mspec = self.cluster.machine_spec(device)
        dspec = self.cluster.device_spec(device)
        total = 0.0
        for tier, rows in rows_per_tier.items():
            nbytes = rows * row_bytes
            if nbytes <= 0:
                continue
            if tier is Tier.GPU_CACHE:
                total += dspec.memory_bound_seconds(nbytes)
            elif tier is Tier.PEER_GPU:
                total += mspec.gpu_peer_link().seconds(nbytes)
            elif tier is Tier.LOCAL_CPU:
                total += mspec.pcie.seconds(nbytes)
            else:
                total += self.cluster.inter_machine_link_per_gpu(device).seconds(nbytes)
        return total
