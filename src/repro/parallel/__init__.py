"""Host-side execution backends (serial / shared-memory process pool).

See DESIGN.md §5.10: backends move *host wall-clock* work (sampling,
feature gathering, batch prefetch) without touching the simulation —
losses, parameters, and simulated Timeline charges are bit-identical
across backends.  §5.11 adds the fault-tolerance layer on top: worker
supervision (:mod:`repro.parallel.supervisor`), deterministic host-fault
injection (:mod:`repro.parallel.chaos`), and graceful degradation back
to the serial backend.
"""

from repro.parallel.backend import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    make_backend,
    resolve_backend,
)
from repro.parallel.chaos import (
    HOST_FAULT_KINDS,
    HostFaultEvent,
    HostFaultSchedule,
    split_injections,
)
from repro.parallel.supervisor import (
    FailureBudgetExceeded,
    FaultPolicy,
    HeartbeatBoard,
    SlotCorruption,
    SupervisionError,
    WorkerCrash,
    WorkerTimeout,
    WorkerSupervisor,
)

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "make_backend",
    "resolve_backend",
    "HOST_FAULT_KINDS",
    "HostFaultEvent",
    "HostFaultSchedule",
    "split_injections",
    "FaultPolicy",
    "WorkerSupervisor",
    "HeartbeatBoard",
    "SupervisionError",
    "WorkerCrash",
    "WorkerTimeout",
    "SlotCorruption",
    "FailureBudgetExceeded",
]
