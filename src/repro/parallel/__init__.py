"""Host-side execution backends (serial / shared-memory process pool).

See DESIGN.md §5.10: backends move *host wall-clock* work (sampling,
feature gathering, batch prefetch) without touching the simulation —
losses, parameters, and simulated Timeline charges are bit-identical
across backends.
"""

from repro.parallel.backend import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    make_backend,
    resolve_backend,
)

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "make_backend",
    "resolve_backend",
]
