"""Pluggable host-side execution backends: serial and process-pool.

A backend owns the *host wall-clock* side of the engine's per-device
loops: where sampling runs, whether batch ``k+1`` is prepared while batch
``k`` trains, and where feature rows are gathered.  It is strictly
invisible to the simulation: both backends produce bit-identical
minibatches, losses, parameters, and simulated Timeline charges (pinned by
``tests/parallel/test_equivalence.py``) — only host seconds differ.

:class:`SerialBackend`
    The default.  Samples inline on the main process, through the
    context's :class:`~repro.sampling.cache.SampleCache` when present.

:class:`ProcessPoolBackend`
    Fans sampling out to a ``multiprocessing`` pool whose workers hold
    zero-copy shared-memory views of the CSR graph and feature matrix
    (attached once at pool startup).  The epoch loop is pipelined: up to
    ``prefetch_depth`` future global batches are being sampled in workers
    while the current batch runs numerics on the main process.  One task
    covers one whole global batch — the worker samples the union of the
    per-device seed chunks once and *restricts* each device's minibatch
    out of it, so the backend also does strictly less sampling work than
    the serial per-device loop (their frontiers overlap).  Results return
    through preallocated shared-memory slots; prefetched batches bypass
    the sample cache (slot buffers are recycled, cache entries must not
    alias them).

Prefetches are matched by content digest of ``(epoch, per-device seed
chunks)``; any divergence (mid-epoch strategy switch, direct
``run_global_batch`` calls) flushes the queue and falls back to an
unplanned submission — correctness never depends on the schedule guess.

Host faults never break the contract either: every task runs under a
:class:`~repro.parallel.supervisor.WorkerSupervisor` (deadlines, retries,
respawn, digest validation), a seeded
:class:`~repro.parallel.chaos.HostFaultSchedule` can inject worker faults
deterministically, and once the supervisor's failure budget is exhausted
the backend *degrades*: remaining batches are sampled inline exactly as
:class:`SerialBackend` would, so a sick host finishes the run slower but
bit-identical (pinned by ``tests/parallel/test_chaos.py``).
"""

from __future__ import annotations

import hashlib
import os
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.parallel.chaos import HostFaultSchedule
from repro.parallel.shm import SlotRing, export_task_data, read_array
from repro.parallel.supervisor import (
    TEARDOWN_ERRORS,
    FailureBudgetExceeded,
    FaultPolicy,
    Flight,
    WorkerSupervisor,
    slot_digest,
)
from repro.sampling.block import Block, MiniBatch

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "make_backend",
    "resolve_backend",
]

#: Default worker count when the config leaves it at 0 ("auto").
_AUTO_WORKERS = max(1, min(4, os.cpu_count() or 1))

#: Extra slots beyond the prefetch depth: slots retired after a serve are
#: held for ``holdoff`` further serves before reuse (views stay valid).
_SLOT_HOLDOFF = 2

#: Sizing headroom of the result slots over the first observed batch.
_SLOT_HEADROOM = 1.6


class ExecutionBackend:
    """Interface of a host-side execution backend (serial semantics)."""

    name = "serial"

    # -- epoch pipeline hooks ------------------------------------------ #
    def begin_epoch(self, strategy, ctx, epoch: int, global_batches) -> None:
        """Announce the epoch's batch schedule (enables prefetching)."""

    def finish_epoch(self, ctx) -> None:
        """Epoch barrier: drain pending work, flush telemetry counters."""

    # -- per-batch dispatch points ------------------------------------- #
    def sample_device_chunks(
        self, ctx, seeds_per_device, epoch: int
    ) -> List[Optional[MiniBatch]]:
        """Per-device minibatches for one global batch (no charging —
        :func:`repro.engine.base.sample_batches` charges simulated time
        identically for every backend)."""
        raise NotImplementedError

    def take_gather(self, device: int, node_ids) -> Optional[np.ndarray]:
        """Prefetched feature rows for exactly ``node_ids`` on ``device``,
        or ``None`` (caller reads through the feature store)."""
        return None

    def quiesce(self) -> None:
        """Settle all in-flight work and drop any prefetched schedule.

        The elastic transition (DESIGN.md §5.16) calls this before
        re-partitioning: slots drain through the supervisor (released
        when safely settled, quarantined when a worker may still write
        them) and the epoch schedule is discarded, because its seed
        chunks were split for the *old* device set.  The pool itself
        stays up — the shm export is cluster-independent.  No-op on the
        serial backend.
        """

    # -- lifecycle ------------------------------------------------------ #
    def stats(self) -> Dict[str, float]:
        """Lifetime counters (also streamed into telemetry per epoch)."""
        return {}

    def close(self) -> None:
        """Release pools and shared memory; idempotent."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """Inline sampling on the main process (the default backend)."""

    name = "serial"

    def sample_device_chunks(self, ctx, seeds_per_device, epoch):
        batches: List[Optional[MiniBatch]] = []
        for seeds in seeds_per_device:
            if seeds is None or len(seeds) == 0:
                batches.append(None)
                continue
            if ctx.sample_cache is not None:
                batches.append(ctx.sample_cache.sample(ctx.sampler, seeds, epoch=epoch))
            else:
                batches.append(ctx.sampler.sample(seeds, epoch=epoch))
        return batches


#: Fallback backend for contexts constructed without one.
_SERIAL = SerialBackend()


def resolve_backend(ctx) -> ExecutionBackend:
    """The context's backend, or the shared serial fallback."""
    return getattr(ctx, "backend", None) or _SERIAL


# ---------------------------------------------------------------------- #
def _digest(epoch: int, chunks) -> bytes:
    """Content digest of one global batch's per-device seed chunks."""
    h = hashlib.blake2b(digest_size=16)
    h.update(int(epoch).to_bytes(8, "little", signed=True))
    for c in chunks:
        if c is None or len(c) == 0:
            h.update(b"\x00")
            continue
        a = np.ascontiguousarray(c, dtype=np.int64)
        h.update(b"\x01")
        h.update(np.int64(a.size).tobytes())
        h.update(a.tobytes())
    return h.digest()


class ProcessPoolBackend(ExecutionBackend):
    """Shared-memory worker pool with pipelined global-batch prefetch.

    Parameters
    ----------
    dataset:
        Task dataset; its graph and features are exported to shared memory
        once, workers attach at pool startup.
    num_workers:
        Pool size (``None`` = auto: ``min(4, cpu_count)``).
    prefetch_depth:
        Global batches sampled ahead of the training loop.  ``0`` disables
        pipelining (each batch is still sampled in a worker — the
        union-sampling work reduction applies, overlap does not).
    gather_prefetch:
        Also ship ``features[input_nodes]`` per device for strategies that
        declare ``gather_prefetch`` (GDP — its load set *is* the input
        set).  Off by default: it moves gather work, it does not shrink
        it, so it only pays off when workers overlap a numerics-bound
        main process.
    fault_policy:
        Supervision knobs (deadlines, retries, failure budget); defaults
        to :class:`~repro.parallel.supervisor.FaultPolicy` with its
        env-overridable defaults.
    chaos:
        A :class:`~repro.parallel.chaos.HostFaultSchedule` of deliberate
        host faults keyed by task sequence number; defaults to whatever
        ``REPRO_CHAOS`` arms (``None`` when unset).
    """

    name = "process"

    def __init__(
        self,
        dataset,
        num_workers: Optional[int] = None,
        prefetch_depth: int = 2,
        gather_prefetch: bool = False,
        fault_policy: Optional[FaultPolicy] = None,
        chaos: Optional[HostFaultSchedule] = None,
    ):
        self.num_workers = int(num_workers) if num_workers else _AUTO_WORKERS
        if self.num_workers <= 0:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        self.prefetch_depth = max(0, int(prefetch_depth))
        self.gather_prefetch = bool(gather_prefetch)
        self.policy = fault_policy or FaultPolicy()
        self.chaos = chaos if chaos is not None else HostFaultSchedule.from_env()
        self._export = export_task_data(dataset)
        self._supervisor: Optional[WorkerSupervisor] = WorkerSupervisor(
            self._export.descriptor, self.num_workers, self.policy
        )
        self._supervisor.count = self._count
        self._supervisor.emit = self._buffer_event
        self._slots: Optional[SlotRing] = None
        self._closed = False
        self._degraded = False
        #: lifetime task sequence number — the chaos schedule's key; first
        #: attempts only, so a deterministic loop numbers tasks identically
        #: with and without faults.
        self._task_seq = 0
        # pipeline state (one epoch at a time)
        self._schedule: List[Tuple[bytes, Dict]] = []
        self._next = 0
        self._inflight: Deque[Tuple[bytes, Flight]] = deque()
        self._gather: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._counters: Dict[str, float] = {}
        self._events: List[Tuple[str, Dict]] = []
        self._epoch_mark: Dict[str, float] = {}
        self._epoch_t0: Optional[float] = None

    # ------------------------------------------------------------------ #
    def _count(self, name: str, value: float = 1.0) -> None:
        self._counters[name] = self._counters.get(name, 0.0) + value

    def _buffer_event(self, kind: str, **data) -> None:
        """Queue a supervision event; flushed into telemetry at the next
        epoch barrier (supervision has no context handle of its own)."""
        if len(self._events) < 512:
            self._events.append((kind, data))

    def stats(self) -> Dict[str, float]:
        return dict(self._counters)

    # ------------------------------------------------------------------ #
    def begin_epoch(self, strategy, ctx, epoch, global_batches) -> None:
        if self._degraded:
            return
        self._drain(wasted=True)
        self._gather.clear()
        gather = (
            self.gather_prefetch
            and ctx.numerics
            and getattr(strategy, "gather_prefetch", False)
        )
        base = {
            "epoch": int(epoch),
            "fanouts": tuple(ctx.sampler.fanouts),
            "global_seed": int(ctx.sampler.global_seed),
            "gather": bool(gather),
        }
        self._schedule = []
        for gb in global_batches:
            chunks = strategy.assign_seeds(ctx, gb)
            payload = dict(base, chunks=list(chunks))
            self._schedule.append((_digest(epoch, chunks), payload))
        self._next = 0
        self._epoch_t0 = time.perf_counter()
        self._epoch_mark = dict(self._counters)
        self._top_up()

    def finish_epoch(self, ctx) -> None:
        self._drain(wasted=True)
        self._schedule = []
        self._next = 0
        if self._epoch_t0 is None:
            return
        wall = time.perf_counter() - self._epoch_t0
        self._epoch_t0 = None
        deltas = {
            k: v - self._epoch_mark.get(k, 0.0)
            for k, v in self._counters.items()
            if v != self._epoch_mark.get(k, 0.0)
        }
        busy = deltas.get("worker_busy_seconds", 0.0)
        utilization = (
            busy / (wall * self.num_workers) if wall > 0.0 else 0.0
        )
        for key, value in deltas.items():
            ctx.count(f"parallel.{key}", value, phase="parallel")
        ctx.count("parallel.epoch_host_seconds", wall, phase="parallel")
        events, self._events = self._events, []
        if ctx.telemetry is not None:
            for kind, data in events:
                ctx.telemetry.emit(
                    kind,
                    sim_time=ctx.timeline.wall_seconds,
                    phase="parallel",
                    **data,
                )
        if ctx.telemetry is not None:
            ctx.telemetry.emit(
                "pipeline",
                sim_time=ctx.timeline.wall_seconds,
                phase="parallel",
                backend=self.name,
                workers=self.num_workers,
                prefetch_depth=self.prefetch_depth,
                host_wall_seconds=wall,
                worker_utilization=utilization,
                **{k: v for k, v in deltas.items() if k != "worker_busy_seconds"},
            )

    def quiesce(self) -> None:
        """Elastic barrier: settle in-flight slots, drop the schedule."""
        if self._degraded:
            return
        self._drain(wasted=True)
        self._schedule = []
        self._next = 0
        self._gather.clear()
        self._count("quiesce")

    # ------------------------------------------------------------------ #
    def _submit(self, entry: Tuple[bytes, Dict]) -> None:
        digest, payload = entry
        slot = self._slots.acquire() if self._slots is not None else None
        if self._slots is not None and slot is None:  # pragma: no cover
            self._count("slot_stall")
        leak = False
        if self.chaos:
            directives = self.chaos.directives_at(self._task_seq)
            for event, seconds in directives:
                self._count("chaos_injected")
                if event.kind == "leak":
                    leak = True  # backend-side: the slot is never recycled
                else:
                    payload = dict(
                        payload, chaos={"kind": event.kind, "seconds": seconds}
                    )
            if directives:
                self._buffer_event(
                    "chaos",
                    task=self._task_seq,
                    kinds=[e.kind for e, _ in directives],
                )
        self._task_seq += 1
        flight = self._supervisor.submit(payload, slot)
        flight.leak_slot = leak
        self._inflight.append((digest, flight))

    def _top_up(self) -> None:
        while (
            len(self._inflight) < self.prefetch_depth
            and self._next < len(self._schedule)
        ):
            self._submit(self._schedule[self._next])
            self._next += 1

    def _drain(self, wasted: bool = False) -> None:
        """Settle and discard every in-flight task.

        A task that finished (either way) frees its slot; one that may
        still be running when the drain gives up has its slot quarantined
        — a late write to a recycled slot could corrupt a served batch.
        """
        while self._inflight:
            _, flight = self._inflight.popleft()
            if self._supervisor is None or self._degraded:
                # The pool is gone; nothing will write these slots again.
                if self._slots is not None:
                    self._slots.release(flight.slot)
                continue
            safe, _ = self._supervisor.settle(flight)
            if self._slots is not None:
                if safe:
                    self._slots.release(flight.slot)
                else:
                    self._slots.quarantine(flight.slot)
                    self._count("slots_quarantined")
            if wasted:
                self._count("prefetch_wasted")

    # -- supervision plumbing ------------------------------------------- #
    def _fresh_slot(self) -> Optional[str]:
        return self._slots.acquire() if self._slots is not None else None

    def _lose_slot(self, name: Optional[str]) -> None:
        if self._slots is not None and name is not None:
            self._slots.quarantine(name)
            self._count("slots_quarantined")

    def _validate(self, result: Dict, slot: Optional[str]) -> bool:
        """Recompute the slot digest the worker reported; True = intact."""
        if not result.get("via_shm") or slot is None or self._slots is None:
            return True  # pickled results carry the arrays themselves
        want = result.get("digest")
        if not want:
            return True
        got = slot_digest(
            self._slots.buffer(slot), int(result.get("packed_bytes", 0))
        )
        return got == want

    def _degrade(self, reason: str) -> None:
        """Fall back to inline serial sampling for the rest of the run."""
        self._degraded = True
        self._count("degraded")
        self._buffer_event(
            "degraded",
            reason=reason,
            failures=self._supervisor.failures if self._supervisor else 0,
        )
        if self._supervisor is not None:
            # Terminate first: with every worker dead, no slot can be
            # written again and the in-flight queue can be dropped safely.
            self._supervisor.close()
            self._supervisor = None
        self._drain(wasted=True)
        self._schedule = []
        self._next = 0

    def _ensure_slots(self, nbytes: int) -> None:
        if self._slots is not None:
            return
        slot_bytes = max(int(nbytes * _SLOT_HEADROOM), 1 << 20)
        self._slots = SlotRing(
            n_slots=self.prefetch_depth + _SLOT_HOLDOFF + 2,
            slot_bytes=slot_bytes,
            holdoff=_SLOT_HOLDOFF,
        )

    # ------------------------------------------------------------------ #
    def sample_device_chunks(self, ctx, seeds_per_device, epoch):
        if self._degraded:
            # Graceful degradation: identical inline sampling to
            # :class:`SerialBackend` (same cache, same sampler) — slower,
            # never different.
            self._count("degraded_batches")
            return _SERIAL.sample_device_chunks(ctx, seeds_per_device, epoch)
        digest = _digest(epoch, seeds_per_device)
        if self._inflight and self._inflight[0][0] == digest:
            _, flight = self._inflight.popleft()
            self._count("prefetch_hits")
        else:
            if self._inflight:
                # The schedule diverged (e.g. a mid-epoch caller outside the
                # announced batch order): nothing queued is trustworthy.
                self._drain(wasted=True)
            if (
                self._next < len(self._schedule)
                and self._schedule[self._next][0] == digest
            ):
                # Pipelining off (depth 0) or not yet submitted: next
                # scheduled batch, sampled synchronously in a worker.
                self._submit(self._schedule[self._next])
                self._next += 1
                self._count("sync_batches")
            else:
                payload = {
                    "epoch": int(epoch),
                    "fanouts": tuple(ctx.sampler.fanouts),
                    "global_seed": int(ctx.sampler.global_seed),
                    "gather": False,
                    "chunks": list(seeds_per_device),
                }
                self._submit((digest, payload))
                self._count("unplanned_batches")
            _, flight = self._inflight.pop()
        try:
            result, flight = self._supervisor.result(
                flight,
                fresh_slot=self._fresh_slot,
                lose_slot=self._lose_slot,
                validate=self._validate,
            )
        except FailureBudgetExceeded as exc:
            self._degrade(str(exc))
            self._count("degraded_batches")
            return _SERIAL.sample_device_chunks(ctx, seeds_per_device, epoch)
        slot = flight.slot
        self._count("worker_busy_seconds", float(result.get("busy", 0.0)))
        batches = self._unpack(result, slot)
        if self._slots is None:
            self._ensure_slots(int(result.get("nbytes", 0)))
        if slot is not None:
            if flight.leak_slot:
                # Chaos "leak": drop the slot on the floor.  The ring
                # shrinks by one; the interpreter-exit guard still unlinks
                # the segment at shutdown.
                self._count("slot_leaks")
            elif result["via_shm"]:
                self._slots.retire(slot)
            else:
                self._count("slot_overflow")
                self._slots.release(slot)
        self._top_up()
        return batches

    def _unpack(self, result: Dict, slot: Optional[str]):
        buf = (
            self._slots.buffer(slot)
            if (result["via_shm"] and slot is not None and self._slots is not None)
            else None
        )
        gather = result.get("gather", False)
        batches: List[Optional[MiniBatch]] = []
        for d, item in enumerate(result["devices"]):
            if item is None:
                batches.append(None)
                continue
            arrays = [read_array(buf, s) if buf is not None else s for s in item]
            num_layers = result["layers"][d]
            blocks = []
            for i in range(num_layers):
                s, dn, dis, es, ed = arrays[1 + 5 * i : 6 + 5 * i]
                blocks.append(
                    Block(
                        src_nodes=s,
                        dst_nodes=dn,
                        dst_in_src=dis,
                        edge_src=es,
                        edge_dst=ed,
                    )
                )
            batches.append(MiniBatch(seeds=arrays[0], blocks=blocks))
            if gather:
                self._gather[d] = (blocks[0].src_nodes, arrays[-1])
        return batches

    def take_gather(self, device, node_ids):
        entry = self._gather.pop(device, None)
        if entry is None:
            return None
        nodes, rows = entry
        ids = np.asarray(node_ids, dtype=np.int64)
        if nodes.shape == ids.shape and np.array_equal(nodes, ids):
            self._count("gather_hits")
            return rows
        self._count("gather_misses")
        return None

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._inflight.clear()
        self._gather.clear()
        if self._supervisor is not None:
            # Pool teardown failures are classified (TEARDOWN_ERRORS) and
            # reported as ``worker_error`` inside the supervisor — never
            # silently swallowed, never fatal to teardown.
            self._supervisor.close()
            self._supervisor = None
        if self._slots is not None:
            self._slots.close()
            self._slots = None
        self._export.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except TEARDOWN_ERRORS as exc:
            self._count("worker_error")
            self._buffer_event(
                "worker_error", error=type(exc).__name__, where="__del__"
            )


# ---------------------------------------------------------------------- #
def make_backend(config, dataset) -> ExecutionBackend:
    """Backend from an :class:`~repro.config.APTConfig`."""
    kind = getattr(config, "execution_backend", "serial")
    if kind == "serial":
        return SerialBackend()
    if kind == "process":
        return ProcessPoolBackend(
            dataset,
            num_workers=getattr(config, "num_workers", 0) or None,
            prefetch_depth=getattr(config, "prefetch_depth", 2),
            gather_prefetch=getattr(config, "gather_prefetch", False),
            fault_policy=getattr(config, "fault_policy", None),
            chaos=getattr(config, "host_chaos", None),
        )
    raise ValueError(f"unknown execution backend {kind!r}")
