"""Worker supervision for the process execution backend.

The :class:`~repro.parallel.backend.ProcessPoolBackend` used to trust its
pool: a worker that died took the run down (or hung it forever on
``AsyncResult.get()``), and a corrupted result slot was served to the
engine unchecked.  :class:`WorkerSupervisor` wraps the pool with the
defenses a production host needs:

* **per-task deadlines** — every task must produce a result within
  ``FaultPolicy.task_deadline_s`` of submission; the wait loop polls at
  ``poll_interval_s`` so a dead pool can never block the run.
* **heartbeat-based hang detection** — workers stamp a shared-memory
  heartbeat board at task entry/exit; on a deadline miss the supervisor
  reports which workers hold stale (in-task) stamps, distinguishing a
  *hung* worker from a merely saturated queue.
* **dead-worker detection and respawn** — the pool's worker pids are
  polled every interval; a vanished or non-alive pid fails the in-flight
  task immediately (no need to wait out the deadline) and the pool
  repopulates (``multiprocessing.Pool`` respawns workers through the
  configured initializer, which re-attaches the *existing* shared-memory
  export — nothing is re-exported).  If the pool object itself is broken,
  :meth:`_rebuild_pool` replaces it wholesale against the same export.
* **bounded retry with exponential backoff** — a failed task (timeout,
  crash, worker exception, corrupt slot) is resubmitted up to
  ``max_retries`` times, waiting ``backoff_base_s * backoff_factor**n``
  between attempts.  Resubmissions strip any chaos directive
  (:mod:`repro.parallel.chaos` faults fire on first attempts only) and
  move to a fresh result slot; the abandoned slot is quarantined because
  the original worker may still write it.
* **slot-digest validation** — workers return a BLAKE2b digest of the
  packed slot bytes; the supervisor recomputes it over the shared buffer
  before the result is unpacked and treats a mismatch as a failure.
* **graceful degradation** — once a single task exhausts its retries or
  the lifetime failure count crosses ``failure_budget``, the supervisor
  raises :class:`FailureBudgetExceeded` and the backend falls back to
  serial in-process sampling (bit-identical by the backend contract), so
  a persistently sick host finishes the run slower instead of crashing.

Every transition is emitted as a typed telemetry event (``worker_error``,
``worker_timeout``, ``worker_respawn``, ``task_retry``, ``degraded``) and
mirrored into the backend's lifetime counters.

Timing never affects results: a spurious deadline miss on a loaded CI
machine just resubmits a deterministic task, which produces the same
bytes — pinned with the rest of the bit-identity contract by
``tests/parallel/test_chaos.py``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.parallel.shm import create_segment, destroy_segment

__all__ = [
    "FaultPolicy",
    "SupervisionError",
    "WorkerCrash",
    "WorkerTimeout",
    "SlotCorruption",
    "FailureBudgetExceeded",
    "HeartbeatBoard",
    "Flight",
    "WorkerSupervisor",
]


# ---------------------------------------------------------------------- #
# policy
# ---------------------------------------------------------------------- #
def _env_float(name: str, default: str) -> float:
    return float(os.environ.get(name, default))


def _env_int(name: str, default: str) -> int:
    return int(os.environ.get(name, default))


@dataclass
class FaultPolicy:
    """Supervision knobs of one process-backend run (``APTConfig.fault_policy``).

    Defaults are env-overridable (``REPRO_TASK_DEADLINE_S``,
    ``REPRO_MAX_RETRIES``, ``REPRO_FAILURE_BUDGET``) so CI legs can tighten
    them without code changes.
    """

    #: seconds a task may take from (re)submission to result
    task_deadline_s: float = field(
        default_factory=lambda: _env_float("REPRO_TASK_DEADLINE_S", "30.0")
    )
    #: resubmissions allowed per task before giving up
    max_retries: int = field(
        default_factory=lambda: _env_int("REPRO_MAX_RETRIES", "3")
    )
    #: lifetime failures (timeouts + crashes + corruptions) before the
    #: backend degrades to serial sampling
    failure_budget: int = field(
        default_factory=lambda: _env_int("REPRO_FAILURE_BUDGET", "16")
    )
    #: first retry's backoff; attempt ``n`` waits ``base * factor**n``
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    #: cap on any single backoff sleep
    backoff_max_s: float = 2.0
    #: result/worker-liveness polling cadence
    poll_interval_s: float = 0.02
    #: longest an epoch drain waits per abandoned prefetch before
    #: quarantining its slot
    drain_timeout_s: float = 5.0
    #: verify the BLAKE2b digest of every shared-memory result slot
    validate_digests: bool = True

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> "FaultPolicy":
        if not float(self.task_deadline_s) > 0.0:
            raise ValueError(
                f"task_deadline_s must be positive seconds, got "
                f"{self.task_deadline_s}"
            )
        if int(self.max_retries) < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if int(self.failure_budget) < 0:
            raise ValueError(
                f"failure_budget must be >= 0, got {self.failure_budget}"
            )
        if float(self.backoff_base_s) < 0.0 or float(self.backoff_max_s) < 0.0:
            raise ValueError("backoff seconds must be >= 0")
        if float(self.backoff_factor) < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if not float(self.poll_interval_s) > 0.0:
            raise ValueError(
                f"poll_interval_s must be positive, got {self.poll_interval_s}"
            )
        if not float(self.drain_timeout_s) > 0.0:
            raise ValueError(
                f"drain_timeout_s must be positive, got {self.drain_timeout_s}"
            )
        self.task_deadline_s = float(self.task_deadline_s)
        self.max_retries = int(self.max_retries)
        self.failure_budget = int(self.failure_budget)
        self.backoff_base_s = float(self.backoff_base_s)
        self.backoff_factor = float(self.backoff_factor)
        self.backoff_max_s = float(self.backoff_max_s)
        self.poll_interval_s = float(self.poll_interval_s)
        self.drain_timeout_s = float(self.drain_timeout_s)
        self.validate_digests = bool(self.validate_digests)
        return self

    def backoff_at(self, attempt: int) -> float:
        """Backoff before resubmission number ``attempt`` (0-based)."""
        return min(
            self.backoff_base_s * self.backoff_factor ** max(attempt, 0),
            self.backoff_max_s,
        )

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


# ---------------------------------------------------------------------- #
# failures
# ---------------------------------------------------------------------- #
class SupervisionError(RuntimeError):
    """Base of every failure the supervisor classifies."""


class WorkerCrash(SupervisionError):
    """A pool worker process died while a task was in flight."""


class WorkerTimeout(SupervisionError):
    """A task missed its deadline (hung or starved worker)."""


class SlotCorruption(SupervisionError):
    """A result slot's bytes did not match the worker's digest."""


class FailureBudgetExceeded(SupervisionError):
    """Retries are exhausted; the caller should degrade to serial."""


#: exception types a teardown/flush path may swallow after reporting —
#: everything a dying worker or torn-down pool realistically raises.
#: Deliberately scoped: programming errors (TypeError, KeyError, ...)
#: and process-fatal conditions still propagate.
TEARDOWN_ERRORS = (
    OSError,
    EOFError,
    ValueError,
    RuntimeError,
    multiprocessing.TimeoutError,
    multiprocessing.ProcessError,
)


# ---------------------------------------------------------------------- #
# heartbeats
# ---------------------------------------------------------------------- #
class HeartbeatBoard:
    """A shared float64 stamp per worker: positive = in task, negative = idle.

    Workers claim a board index at pool init (a shared counter, modulo
    capacity so respawned workers wrap instead of overflowing) and stamp
    ``+monotonic()`` when a task starts, ``-monotonic()`` when it ends.
    The supervisor reads the board to tell a *hung* worker (stale positive
    stamp) from a starved queue when a deadline trips.
    """

    def __init__(self, capacity: int):
        self.capacity = max(int(capacity), 1)
        self._segment = create_segment(self.capacity * 8)
        self._board = np.ndarray(
            (self.capacity,), dtype=np.float64, buffer=self._segment.buf
        )
        self._board[:] = 0.0

    @property
    def descriptor(self) -> Tuple[str, int]:
        """Picklable ``(segment name, capacity)`` for worker attachment."""
        return (self._segment.name, self.capacity)

    def stamps(self) -> np.ndarray:
        return self._board.copy()

    def stale_workers(self, older_than_s: float) -> List[int]:
        """Indices whose in-task stamp is older than ``older_than_s``."""
        now = time.monotonic()
        stamps = self.stamps()
        return [
            int(i)
            for i in np.nonzero((stamps > 0.0) & (now - stamps > older_than_s))[0]
        ]

    def close(self) -> None:
        if self._segment is not None:
            self._board = None
            destroy_segment(self._segment)
            self._segment = None


# ---------------------------------------------------------------------- #
# supervised pool
# ---------------------------------------------------------------------- #
@dataclass
class Flight:
    """One in-flight task attempt and everything needed to retry it."""

    payload: Dict[str, Any]
    handle: Any
    slot: Optional[str]
    digest: bytes = b""
    attempts: int = 0
    submitted_at: float = 0.0
    #: backend-side chaos: skip recycling this task's slot when served
    leak_slot: bool = False


class WorkerSupervisor:
    """Owns the worker pool of one backend and supervises every task.

    The backend stays in charge of *what* runs (payloads, slots, pipeline
    order); the supervisor is in charge of *whether it ran* — deadlines,
    retries, respawns, digest checks, and the failure budget.

    ``emit`` and ``count`` are rebound by the backend to the active
    telemetry collector / counter sink; they default to no-ops so the
    supervisor works detached (unit tests, drains after teardown).
    """

    def __init__(
        self,
        descriptor,
        num_workers: int,
        policy: Optional[FaultPolicy] = None,
        *,
        initializer: Callable = None,
        heartbeats: bool = True,
    ):
        from repro.parallel.worker import init_worker

        self.descriptor = descriptor
        self.num_workers = int(num_workers)
        if self.num_workers <= 0:
            raise ValueError(
                f"num_workers must be positive, got {num_workers} "
                f"(0 means 'auto' only at the APTConfig level)"
            )
        self.policy = (policy or FaultPolicy()).validate()
        self._initializer = initializer or init_worker
        # Respawned workers claim fresh board indices; size the board so
        # a realistic number of respawns never wraps onto a live worker.
        self.heartbeats = (
            HeartbeatBoard(self.num_workers * 8) if heartbeats else None
        )
        self._hb_counter = multiprocessing.Value("l", 0)
        self._pool = None
        self._pids: set = set()
        self._reported_dead: set = set()
        #: pids of the most recently observed worker deaths — used to name
        #: the offending workers in the exception messages
        self.last_dead: List[int] = []
        self.failures = 0
        self.respawns = 0
        self._closed = False
        self.emit: Callable[..., None] = lambda kind, **data: None
        self.count: Callable[..., None] = lambda name, value=1.0: None
        self._spawn_pool()

    # ------------------------------------------------------------------ #
    # pool lifecycle
    # ------------------------------------------------------------------ #
    def _initargs(self) -> tuple:
        hb = self.heartbeats.descriptor if self.heartbeats is not None else None
        return (self.descriptor, hb, self._hb_counter)

    def _spawn_pool(self) -> None:
        self._pool = multiprocessing.get_context().Pool(
            self.num_workers,
            initializer=self._initializer,
            initargs=self._initargs(),
        )
        self._pids = {p.pid for p in self._pool._pool}
        self._reported_dead = set()

    def _rebuild_pool(self) -> None:
        """Replace a broken pool wholesale; re-attaches the same export."""
        old = self._pool
        try:
            old.terminate()
            old.join()
        except TEARDOWN_ERRORS as exc:
            self.count("worker_error")
            self.emit("worker_error", error=type(exc).__name__, where="rebuild")
        self.respawns += 1
        self.count("pool_rebuilds")
        self._spawn_pool()
        self.emit("worker_respawn", scope="pool", workers=self.num_workers)

    def _poll_workers(self) -> bool:
        """Update the liveness picture; True when a death was observed.

        ``multiprocessing.Pool`` repopulates dead workers on its own (its
        maintenance thread re-runs the initializer, which re-attaches the
        existing shared-memory export), so detection — not respawning —
        is the job here.  Each death is reported exactly once.
        """
        procs = list(self._pool._pool)
        current = {p.pid for p in procs}
        dead = {p.pid for p in procs if not p.is_alive()}
        vanished = (self._pids - current) | dead
        fresh = vanished - self._reported_dead
        if fresh:
            self._reported_dead |= fresh
            self.last_dead = sorted(fresh)
            self.respawns += len(fresh)
            self.count("worker_deaths", float(len(fresh)))
            self.emit(
                "worker_respawn",
                scope="worker",
                died=sorted(fresh),
                alive=len(current - dead),
            )
        self._pids = current
        return bool(fresh)

    def _budget_note(self) -> str:
        """``failures X / budget Y`` fragment for exception messages."""
        return (
            f"failures {self.failures} / budget "
            f"{self.policy.failure_budget}"
        )

    def _offender_note(self) -> str:
        """Names the worker(s) most recently seen dying, if any."""
        if self.last_dead:
            return "worker " + ", ".join(f"pid {p}" for p in self.last_dead)
        return "no worker death observed (timeout/corruption path)"

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        payload: Dict[str, Any],
        slot: Optional[str],
        *,
        digest: bytes = b"",
    ) -> Flight:
        """Submit one task; returns the :class:`Flight` tracking it."""
        from repro.parallel.worker import sample_task

        task = dict(payload, slot=slot)
        if self.policy.validate_digests:
            task["digest"] = True
        try:
            handle = self._pool.apply_async(sample_task, (task,))
        except TEARDOWN_ERRORS as exc:
            # The pool object itself is broken (not just a worker):
            # rebuild against the same export and submit once more.
            self.count("worker_error")
            self.emit("worker_error", error=type(exc).__name__, where="submit")
            self._rebuild_pool()
            handle = self._pool.apply_async(sample_task, (task,))
        return Flight(
            payload=payload,
            handle=handle,
            slot=slot,
            digest=digest,
            submitted_at=time.monotonic(),
        )

    # ------------------------------------------------------------------ #
    # supervised result
    # ------------------------------------------------------------------ #
    def _wait(self, flight: Flight) -> Dict[str, Any]:
        """Result of one attempt, or a classified :class:`SupervisionError`."""
        deadline = flight.submitted_at + self.policy.task_deadline_s
        while True:
            if flight.handle.ready():
                try:
                    return flight.handle.get()
                except SupervisionError:
                    raise
                except Exception as exc:
                    # The worker raised (its traceback rides along).
                    raise WorkerCrash(
                        f"worker raised {type(exc).__name__}: {exc}"
                    ) from exc
            if self._poll_workers():
                # A worker died; the in-flight task *may* have been on it.
                # Fail fast and resubmit — a duplicate completion lands in
                # a quarantined slot and is never read.
                dead = ", ".join(f"pid {p}" for p in self.last_dead) or "unknown"
                raise WorkerCrash(
                    f"pool worker(s) {dead} died while the task was in "
                    f"flight ({self._budget_note()})"
                )
            now = time.monotonic()
            if now >= deadline:
                stale = (
                    self.heartbeats.stale_workers(self.policy.task_deadline_s)
                    if self.heartbeats is not None
                    else []
                )
                raise WorkerTimeout(
                    f"task missed its {self.policy.task_deadline_s:.3f}s "
                    f"deadline (workers with stale in-task heartbeats: "
                    f"{stale or 'none'}; {self._budget_note()})"
                )
            flight.handle.wait(min(self.policy.poll_interval_s, deadline - now))

    def result(
        self,
        flight: Flight,
        *,
        fresh_slot: Callable[[], Optional[str]] = lambda: None,
        lose_slot: Callable[[Optional[str]], None] = lambda name: None,
        validate: Callable[[Dict[str, Any], Optional[str]], bool] = None,
    ) -> Tuple[Dict[str, Any], Flight]:
        """Wait out ``flight``; retry with backoff until success or budget.

        ``fresh_slot``/``lose_slot`` come from the backend's slot ring:
        every resubmission abandons (quarantines) the previous slot and
        acquires a new one.  ``validate`` checks a shared-memory result's
        digest; a mismatch is a failure like any other.  Returns the
        result and the (possibly resubmitted) flight actually served.
        """
        while True:
            try:
                result = self._wait(flight)
                if (
                    validate is not None
                    and self.policy.validate_digests
                    and not validate(result, flight.slot)
                ):
                    raise SlotCorruption(
                        f"result slot {flight.slot!r} failed digest validation"
                    )
                return result, flight
            except SupervisionError as exc:
                flight = self._retry(flight, exc, fresh_slot, lose_slot)

    def _retry(
        self,
        flight: Flight,
        exc: SupervisionError,
        fresh_slot: Callable[[], Optional[str]],
        lose_slot: Callable[[Optional[str]], None],
    ) -> Flight:
        """Account one failure and resubmit, or raise the budget breach."""
        self.failures += 1
        kind = {
            WorkerTimeout: "worker_timeout",
            SlotCorruption: "slot_corrupt",
        }.get(type(exc), "worker_error")
        self.count(kind)
        self.emit(kind, error=str(exc), attempt=flight.attempts)
        if flight.attempts >= self.policy.max_retries:
            raise FailureBudgetExceeded(
                f"task failed {flight.attempts + 1} times "
                f"(max_retries={self.policy.max_retries}; "
                f"{self._budget_note()}); last: {exc}"
            ) from exc
        if self.failures > self.policy.failure_budget:
            raise FailureBudgetExceeded(
                f"lifetime failure budget exhausted ({self._budget_note()}; "
                f"last offender: {self._offender_note()}); last: {exc}"
            ) from exc
        time.sleep(self.policy.backoff_at(flight.attempts))
        # The abandoned slot may still be written by a hung/zombie worker:
        # quarantine it and move the retry to a fresh slot.  Chaos
        # directives fire on first attempts only — retries run clean.
        lose_slot(flight.slot)
        payload = {k: v for k, v in flight.payload.items() if k != "chaos"}
        retry = self.submit(payload, fresh_slot(), digest=flight.digest)
        retry.attempts = flight.attempts + 1
        retry.leak_slot = flight.leak_slot
        self.count("task_retries")
        self.emit("task_retry", attempt=retry.attempts, cause=kind)
        return retry

    # ------------------------------------------------------------------ #
    # drain support
    # ------------------------------------------------------------------ #
    def settle(self, flight: Flight) -> Tuple[bool, Optional[Dict[str, Any]]]:
        """Wait briefly for an abandoned prefetch; don't retry it.

        Returns ``(slot_safe, result)``: ``slot_safe`` is True when the
        attempt definitively finished (success *or* worker exception), so
        its slot can be recycled; False means the worker may still write
        the slot and the caller must quarantine it.
        """
        try:
            result = self._wait_settle(flight)
            return True, result
        except WorkerTimeout:
            self.count("prefetch_abandoned")
            return False, None
        except WorkerCrash as exc:
            self.count("worker_error")
            self.emit("worker_error", error=str(exc), where="drain")
            # The task never completed; its slot was never written fully.
            return False, None

    def _wait_settle(self, flight: Flight) -> Dict[str, Any]:
        deadline = time.monotonic() + self.policy.drain_timeout_s
        while True:
            if flight.handle.ready():
                try:
                    return flight.handle.get()
                except Exception as exc:
                    raise WorkerCrash(
                        f"worker raised {type(exc).__name__}: {exc}"
                    ) from exc
            self._poll_workers()
            if time.monotonic() >= deadline:
                raise WorkerTimeout("abandoned prefetch did not settle")
            flight.handle.wait(self.policy.poll_interval_s)

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, float]:
        return {
            "failures": float(self.failures),
            "respawns": float(self.respawns),
        }

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._pool.terminate()
            self._pool.join()
        except TEARDOWN_ERRORS as exc:  # pragma: no cover - already down
            self.count("worker_error")
            self.emit("worker_error", error=type(exc).__name__, where="close")
        if self.heartbeats is not None:
            self.heartbeats.close()
            self.heartbeats = None


# ---------------------------------------------------------------------- #
def slot_digest(buf, nbytes: int) -> str:
    """BLAKE2b hex digest of the first ``nbytes`` of a slot buffer."""
    h = hashlib.blake2b(digest_size=16)
    h.update(bytes(buf[: max(int(nbytes), 0)]))
    return h.hexdigest()
