"""Worker-process side of the process execution backend.

Each pool worker attaches the shared task data once (at pool startup) and
then serves sampling tasks: one task covers one *global batch* — the
worker samples the union of the batch's per-device seed chunks in a single
pass and derives each device's minibatch by layerwise *restriction*
(:func:`repro.sampling.cache._restrict`), which is bit-identical to
sampling each chunk directly because the counter-based hash sampler is
per-node deterministic.  Sampling the union once does strictly less work
than sampling the chunks separately (their frontiers overlap heavily),
which is where the process backend's wall-clock win comes from even on a
single core; on multi-core hosts the pool adds true overlap on top.

Results are packed into the main-process-owned shared-memory slot named by
the task; only small :class:`~repro.parallel.shm.ArraySpec` descriptors
travel back through the pool's pickle channel.  If a batch outgrows its
slot the worker transparently falls back to pickled arrays (counted by the
backend as ``parallel.slot_overflow``).

Supervision hooks (see :mod:`repro.parallel.supervisor`): each worker
claims one index on a shared *heartbeat board* at init and stamps it
``+monotonic()`` on task entry, ``-monotonic()`` on exit, so the main
process can tell hung workers from starved queues.  When a task's payload
asks for it, the worker returns a BLAKE2b digest of the packed slot bytes
for end-to-end validation.  A ``chaos`` directive in the payload
(:mod:`repro.parallel.chaos`) makes the worker fault itself on purpose —
die, sleep, or corrupt its slot *after* digesting — to drive the
supervision paths deterministically.
"""

from __future__ import annotations

import hashlib
import os
import time
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.featurestore.store import gather_rows
from repro.parallel.shm import TaskDataDescriptor, attach_task_data, write_array
from repro.sampling.cache import _restrict, _sorted_unique
from repro.sampling.neighbor import NeighborSampler

#: Per-process state installed by :func:`init_worker`.
_STATE: Dict[str, object] = {}
#: Attached result slots, by segment name (attach once, reuse per task).
_SLOTS: Dict[str, shared_memory.SharedMemory] = {}
#: Samplers by (fanouts, global_seed) — construction is cheap but the
#: graph handle and fanout normalization are per-config constants.
_SAMPLERS: Dict[Tuple, NeighborSampler] = {}


def init_worker(
    descriptor: TaskDataDescriptor,
    heartbeat: Optional[Tuple[str, int]] = None,
    counter=None,
) -> None:
    """Pool initializer: map the task data shared by the main process.

    Also runs when ``multiprocessing.Pool`` respawns a dead worker — the
    replacement re-attaches the *existing* export (same segment name), so
    respawn never re-exports the dataset.  ``heartbeat`` is the
    supervisor's board descriptor; ``counter`` a shared index allocator so
    every (re)spawned worker claims its own stamp cell.
    """
    segment, graph, features = attach_task_data(descriptor)
    _STATE["segment"] = segment  # keep the mapping alive
    _STATE["graph"] = graph
    _STATE["features"] = features
    _STATE.pop("hb", None)
    if heartbeat is not None and counter is not None:
        name, capacity = heartbeat
        hb_segment = shared_memory.SharedMemory(name=name)
        board = np.ndarray((capacity,), dtype=np.float64, buffer=hb_segment.buf)
        with counter.get_lock():
            index = counter.value % capacity
            counter.value += 1
        _STATE["hb_segment"] = hb_segment
        _STATE["hb"] = (board, index)
    _SLOTS.clear()
    _SAMPLERS.clear()


def _stamp(in_task: bool) -> None:
    """Publish this worker's liveness: +now while in a task, -now idle."""
    hb = _STATE.get("hb")
    if hb is not None:
        board, index = hb
        now = time.monotonic()
        board[index] = now if in_task else -now


def _sampler(fanouts: Tuple[int, ...], global_seed: int) -> NeighborSampler:
    key = (tuple(fanouts), int(global_seed))
    sampler = _SAMPLERS.get(key)
    if sampler is None:
        sampler = NeighborSampler(_STATE["graph"], list(key[0]), global_seed=key[1])
        _SAMPLERS[key] = sampler
    return sampler


def _slot_buffer(name: str):
    seg = _SLOTS.get(name)
    if seg is None:
        seg = shared_memory.SharedMemory(name=name)
        _SLOTS[name] = seg
    return seg.buf


def _batch_arrays(mb, gather: bool) -> List[np.ndarray]:
    """Flat array list of one minibatch: seeds, 5 per block, opt. gather."""
    out = [mb.seeds]
    for b in mb.blocks:
        out.extend((b.src_nodes, b.dst_nodes, b.dst_in_src, b.edge_src, b.edge_dst))
    if gather:
        # Same gather as UnifiedFeatureStore.read, against the shared
        # mapping of the identical feature bytes.
        out.append(gather_rows(_STATE["features"], mb.input_nodes))
    return out


def sample_task(payload: Dict) -> Dict:
    """Sample one global batch; returns per-device array specs (or arrays).

    ``payload`` keys: ``epoch``, ``chunks`` (per-device seed arrays or
    ``None``), ``fanouts``, ``global_seed``, ``gather`` (also ship
    ``features[input_nodes]`` per device), ``slot`` (result segment name,
    or ``None`` to force pickled results — used before slots are sized),
    ``digest`` (return a BLAKE2b digest of the packed slot bytes), and
    ``chaos`` (an armed ``{"kind", "seconds"}`` host-fault directive).
    """
    t0 = time.perf_counter()
    _stamp(in_task=True)
    chaos = payload.get("chaos")
    if chaos is not None:
        if chaos["kind"] == "kill":
            # Die as abruptly as the OOM killer would: no cleanup, no
            # result.  The pool respawns a replacement through
            # :func:`init_worker`; the supervisor resubmits the task.
            os._exit(1)
        elif chaos["kind"] == "hang":
            time.sleep(float(chaos.get("seconds", 0.25)))
    epoch = int(payload["epoch"])
    chunks: List[Optional[np.ndarray]] = payload["chunks"]
    gather = bool(payload.get("gather", False))
    sampler = _sampler(payload["fanouts"], payload["global_seed"])

    active = [(d, c) for d, c in enumerate(chunks) if c is not None and len(c)]
    per_device: List[Optional[object]] = [None] * len(chunks)
    if len(active) == 1:
        d, chunk = active[0]
        per_device[d] = sampler.sample(chunk, epoch=epoch)
    elif active:
        union = np.concatenate([c for _, c in active])
        whole = sampler.sample(union, epoch=epoch)
        for d, chunk in active:
            mb = _restrict(whole, _sorted_unique(np.asarray(chunk, dtype=np.int64)))
            if mb is None:  # pragma: no cover - union always covers chunks
                mb = sampler.sample(chunk, epoch=epoch)
            per_device[d] = mb

    device_arrays = [
        None if mb is None else _batch_arrays(mb, gather) for mb in per_device
    ]
    layers = [None if mb is None else len(mb.blocks) for mb in per_device]
    result = {
        "layers": layers,
        "gather": gather,
        "via_shm": False,
        "nbytes": int(
            sum(a.nbytes for arrs in device_arrays if arrs for a in arrs)
        ),
    }

    slot = payload.get("slot")
    if slot is not None:
        try:
            buf = _slot_buffer(slot)
            offset = 0
            specs: List[Optional[list]] = []
            for arrs in device_arrays:
                if arrs is None:
                    specs.append(None)
                    continue
                dev_specs = []
                for a in arrs:
                    offset, spec = write_array(buf, offset, a)
                    dev_specs.append(spec)
                specs.append(dev_specs)
            result["devices"] = specs
            result["via_shm"] = True
            if payload.get("digest"):
                h = hashlib.blake2b(digest_size=16)
                h.update(bytes(buf[:offset]))
                result["digest"] = h.hexdigest()
                result["packed_bytes"] = int(offset)
            if chaos is not None and chaos["kind"] == "corrupt":
                # Tear the slot *after* digesting, like a partial write
                # racing the reader: the main process must catch the
                # mismatch and resample, never serve the bytes.
                if offset > 0:
                    corrupt = np.ndarray(
                        (min(offset, 8),), dtype=np.uint8, buffer=buf
                    )
                    corrupt[...] = ~corrupt
        except ValueError:
            # Slot overflow: ship the arrays through the pickle channel.
            result["devices"] = device_arrays
    else:
        result["devices"] = device_arrays
    result["busy"] = time.perf_counter() - t0
    _stamp(in_task=False)
    return result
