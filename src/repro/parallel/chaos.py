"""Seeded, deterministic *host*-fault injection for the process backend.

:mod:`repro.cluster.faults` degrades the **simulated** cluster — links,
stragglers, caches — and the engine re-plans around it.  This module is its
host-level mirror: a :class:`HostFaultSchedule` injects real failures into
the worker pool of the :class:`~repro.parallel.backend.ProcessPoolBackend`
so the supervision layer (:mod:`repro.parallel.supervisor`) can be driven
deterministically in tests and CI.  Kinds:

``kill``
    The worker that picks up task *n* dies abruptly (``os._exit``), as if
    OOM-killed.  Exercises dead-worker detection and respawn.
``hang``
    The worker sleeps ``seconds`` before sampling task *n*.  With
    ``seconds`` past the task deadline this exercises hang detection and
    resubmission; below it, merely a straggling worker.
``corrupt``
    The worker flips bytes in its result slot *after* computing the
    result digest, modelling a torn or corrupted shared-memory write.
    Exercises slot-digest validation.
``leak``
    The backend "forgets" to recycle task *n*'s result slot, modelling a
    slot leak.  Exercises the ring's exhaustion fallback (pickled
    results) and the interpreter-exit unlink guard.

Schedules mirror the :class:`~repro.cluster.faults.FaultSchedule` API —
events are keyed by *task sequence number* (the backend's deterministic
submission order) instead of epoch, carry the same ``seed``/``jitter``
semantics (jitter perturbs ``hang`` durations), and round-trip through the
same JSON grammar.  A single ``--inject`` file may carry both a simulated
``events`` section and a host-level ``host_events`` section; see
:func:`split_injections`.  The ``REPRO_CHAOS`` environment variable arms a
schedule for any process-backend run (CI's chaos leg), using either a JSON
payload/path or the compact grammar ``kind@task[:seconds]``, e.g.
``kill@1;hang@4:0.3;corrupt@6;leak@2``.

A chaos directive fires only on a task's *first* attempt: recovery
resubmissions run clean, so every seeded schedule converges to the same
bit-identical run an undisturbed backend produces (pinned by
``tests/parallel/test_chaos.py``).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.utils.random import rng_from

#: Host-fault kinds (mirrors ``repro.cluster.faults.FAULT_KINDS``).
HOST_FAULT_KINDS = ("kill", "hang", "corrupt", "leak")

#: Environment variable CI uses to arm a schedule for every process run.
CHAOS_ENV = "REPRO_CHAOS"


@dataclass(frozen=True)
class HostFaultEvent:
    """One scheduled host fault, fired on the first attempt of ``task``.

    ``task`` is the backend's lifetime task sequence number (0-based, in
    submission order — deterministic for a deterministic training loop).
    ``seconds`` is the ``hang`` duration (ignored otherwise); ``worker``
    is informational only — with a shared task queue the faulting worker
    is whichever one dequeues the task.
    """

    task: int
    kind: str
    seconds: float = 0.25
    worker: Optional[int] = None

    def __post_init__(self) -> None:
        if self.task < 0:
            raise ValueError(f"fault task index must be >= 0, got {self.task}")
        if self.kind not in HOST_FAULT_KINDS:
            raise ValueError(
                f"unknown host fault kind {self.kind!r}; "
                f"expected one of {HOST_FAULT_KINDS}"
            )
        if self.kind == "hang" and not self.seconds > 0.0:
            raise ValueError(
                f"hang duration must be positive seconds, got {self.seconds}"
            )

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"task": self.task, "kind": self.kind}
        if self.kind == "hang":
            out["seconds"] = self.seconds
        if self.worker is not None:
            out["worker"] = self.worker
        return out


class HostFaultSchedule:
    """A task-indexed, seeded sequence of host faults."""

    def __init__(
        self,
        events: Sequence[HostFaultEvent] = (),
        *,
        seed: int = 0,
        jitter: float = 0.0,
    ):
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        self.events: List[HostFaultEvent] = sorted(
            events, key=lambda e: (e.task, e.kind)
        )
        self.seed = int(seed)
        self.jitter = float(jitter)

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    # ------------------------------------------------------------------ #
    def effective_seconds(self, index: int) -> float:
        """Event ``index``'s hang duration after the seeded jitter draw.

        Depends only on ``(seed, index)`` — never on call order — so any
        two walks of the schedule agree exactly (the
        :meth:`FaultSchedule.effective_factor` contract).
        """
        event = self.events[index]
        if self.jitter == 0.0 or event.kind != "hang":
            return event.seconds
        rng = rng_from(self.seed, 0xC4A05, index)
        return event.seconds * (1.0 + rng.uniform(-self.jitter, self.jitter))

    def directives_at(self, task: int) -> List[Tuple[HostFaultEvent, float]]:
        """Events firing at ``task``, with their jittered durations."""
        return [
            (event, self.effective_seconds(index))
            for index, event in enumerate(self.events)
            if event.task == task
        ]

    # ------------------------------------------------------------------ #
    # (de)serialization — shares the CLI ``--inject`` file with
    # repro.cluster.faults under the ``host_events`` key.
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "jitter": self.jitter,
            "host_events": [e.to_dict() for e in self.events],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "HostFaultSchedule":
        events = [HostFaultEvent(**entry) for entry in payload.get("host_events", ())]
        return cls(
            events,
            seed=int(payload.get("seed", 0)),
            jitter=float(payload.get("jitter", 0.0)),
        )

    @classmethod
    def from_json(cls, source: Union[str, os.PathLike]) -> "HostFaultSchedule":
        """Parse a schedule from a JSON string or a file path."""
        text = str(source)
        if not text.lstrip().startswith("{"):
            with open(text) as fh:
                text = fh.read()
        return cls.from_dict(json.loads(text))

    @classmethod
    def parse(cls, source: Union[str, os.PathLike]) -> "HostFaultSchedule":
        """Parse JSON (inline or path) or the compact ``kind@task[:s]``
        grammar, items separated by ``;`` or ``,``."""
        text = str(source).strip()
        if not text:
            return cls()
        if text.lstrip().startswith("{") or os.path.exists(text):
            return cls.from_json(text)
        events = []
        for item in text.replace(",", ";").split(";"):
            item = item.strip()
            if not item:
                continue
            try:
                kind, _, rest = item.partition("@")
                task_s, _, seconds_s = rest.partition(":")
                events.append(
                    HostFaultEvent(
                        task=int(task_s),
                        kind=kind.strip().lower(),
                        **({"seconds": float(seconds_s)} if seconds_s else {}),
                    )
                )
            except (ValueError, TypeError) as exc:
                raise ValueError(
                    f"bad chaos item {item!r} (expected kind@task[:seconds], "
                    f"kind one of {HOST_FAULT_KINDS}): {exc}"
                ) from None
        return cls(events)

    @classmethod
    def from_env(cls, env: str = CHAOS_ENV) -> Optional["HostFaultSchedule"]:
        """Schedule armed via the environment, or ``None`` when unset."""
        value = os.environ.get(env, "").strip()
        if not value:
            return None
        return cls.parse(value)


def split_injections(source: Union[str, os.PathLike]):
    """Load one ``--inject`` payload into its simulated and host halves.

    Returns ``(FaultSchedule | None, HostFaultSchedule | None)`` — either
    section may be absent.  The two schedules share the payload's
    ``seed``/``jitter``.

    The epoch-keyed ``events`` section also carries the elastic membership
    kinds (``host_leave``/``host_join`` — a machine leaves or joins the
    cluster at an epoch boundary, see DESIGN.md §5.16); the task-keyed
    ``host_events`` section stays about *process* faults inside a fixed
    membership (kill/hang/corrupt/leak).
    """
    from repro.cluster.faults import FaultSchedule

    text = str(source)
    if not text.lstrip().startswith("{"):
        with open(text) as fh:
            text = fh.read()
    payload = json.loads(text)
    faults = FaultSchedule.from_dict(payload) if payload.get("events") else None
    chaos = (
        HostFaultSchedule.from_dict(payload) if payload.get("host_events") else None
    )
    return faults, chaos
