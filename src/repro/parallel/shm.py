"""Shared-memory plumbing for the process execution backend.

Two kinds of segments flow between the main process and the sampler
workers:

* **task-data segments** — the CSR graph (``indptr``/``indices``) and the
  feature matrix, exported once by the main process at pool startup and
  attached read-only by every worker (:func:`export_task_data` /
  :func:`attach_task_data`).  Attaching maps the same physical pages, so
  workers sample and gather against the *identical bytes* the main process
  trains on — zero copies, and bit-identity of worker-produced arrays is
  structural rather than asserted.
* **result slots** — a small ring of fixed-size segments the main process
  preallocates; a worker packs its sampled index arrays (and optional
  gathered feature rows) into the slot named by its task and returns only
  tiny :class:`ArraySpec` descriptors.  The main process reconstructs
  NumPy views directly on the slot buffer (:func:`read_array`), avoiding
  the pickle round-trip that would otherwise dominate IPC.

Every segment is created (and eventually unlinked) by the **main**
process; workers never create or unlink, which keeps the
``multiprocessing.resource_tracker`` silent and makes cleanup a pure
main-process concern (see DESIGN.md §5.10).

Creation goes through :func:`create_segment`, which registers every
segment in a module-level table unlinked by an ``atexit`` finalizer: if
the interpreter exits abnormally (uncaught exception, ``sys.exit`` mid-
run) before the owning object's ``close()`` ran, the guard still unlinks
the segment instead of leaving it to ``resource_tracker`` warnings and
``/dev/shm`` litter.  Normal teardown paths call :func:`destroy_segment`,
which unlinks and deregisters immediately.
"""

from __future__ import annotations

import atexit
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

#: Slot payloads are 8-byte aligned so int64/float64 views are native.
_ALIGN = 8


def _aligned(n: int) -> int:
    return (int(n) + _ALIGN - 1) // _ALIGN * _ALIGN


# ---------------------------------------------------------------------- #
# interpreter-exit unlink guard for main-process-created segments
# ---------------------------------------------------------------------- #
#: segments created by this process and not yet destroyed, by name
_LIVE_SEGMENTS: Dict[str, shared_memory.SharedMemory] = {}
_GUARD_ARMED = False


def _unlink_live_segments() -> None:
    """``atexit`` finalizer: unlink every segment still registered.

    Reached only when an owner's ``close()`` did not run (abnormal exit);
    live NumPy views keep their pages mapped (``close`` raising
    ``BufferError`` is tolerated), but the name is always removed so the
    segment cannot outlive the interpreter.
    """
    for name in list(_LIVE_SEGMENTS):
        segment = _LIVE_SEGMENTS.pop(name)
        try:
            segment.close()
        except BufferError:  # pragma: no cover - exported views at exit
            pass
        try:
            segment.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover
            pass


def create_segment(size: int) -> shared_memory.SharedMemory:
    """Create a shared-memory segment registered with the exit guard."""
    global _GUARD_ARMED
    segment = shared_memory.SharedMemory(create=True, size=max(int(size), 1))
    if not _GUARD_ARMED:
        atexit.register(_unlink_live_segments)
        _GUARD_ARMED = True
    _LIVE_SEGMENTS[segment.name] = segment
    return segment


def destroy_segment(segment: shared_memory.SharedMemory) -> None:
    """Normal-teardown counterpart: close, unlink, deregister."""
    _LIVE_SEGMENTS.pop(segment.name, None)
    try:
        segment.close()
    except BufferError:  # pragma: no cover - live views at teardown
        pass
    try:
        segment.unlink()
    except (FileNotFoundError, OSError):  # pragma: no cover - double close
        pass


@dataclass(frozen=True)
class ArraySpec:
    """Location of one array inside a shared-memory segment (picklable)."""

    offset: int
    dtype: str
    shape: Tuple[int, ...]

    @property
    def nbytes(self) -> int:
        n = int(np.dtype(self.dtype).itemsize)
        for s in self.shape:
            n *= int(s)
        return n


def write_array(buf, offset: int, arr: np.ndarray) -> Tuple[int, ArraySpec]:
    """Copy ``arr`` into ``buf`` at ``offset``; returns (next offset, spec).

    Raises :class:`ValueError` when the array does not fit — callers treat
    that as a slot overflow and fall back to pickling.
    """
    arr = np.ascontiguousarray(arr)
    end = offset + arr.nbytes
    if end > len(buf):
        raise ValueError(
            f"array of {arr.nbytes} bytes does not fit at offset {offset} "
            f"of a {len(buf)}-byte slot"
        )
    if arr.nbytes:
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=buf, offset=offset)
        view[...] = arr
    return _aligned(end), ArraySpec(offset, arr.dtype.str, tuple(arr.shape))


def read_array(buf, spec: ArraySpec) -> np.ndarray:
    """Zero-copy view of the array described by ``spec`` inside ``buf``."""
    return np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=buf,
                      offset=spec.offset)


# ---------------------------------------------------------------------- #
# task data: graph + features, exported once per pool
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class MemmapSpec:
    """Location of a memory-mapped array on disk (picklable).

    Out-of-core feature matrices are *not* copied into the shared segment —
    that copy is exactly what out-of-core training must avoid.  Workers map
    the same file read-only instead; the OS page cache shares the physical
    pages of whatever slice of the working set each worker touches, so the
    bytes are identical to the main process's by construction and resident
    memory stays bounded by the touched slice, not the matrix.
    """

    path: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int = 0


@dataclass(frozen=True)
class TaskDataDescriptor:
    """Everything a worker needs to attach the task data (picklable).

    ``features`` is an :class:`ArraySpec` into the shared segment for
    in-RAM datasets, or a :class:`MemmapSpec` for disk-backed ones.
    """

    segment_name: str
    num_nodes: int
    indptr: ArraySpec
    indices: ArraySpec
    features: "ArraySpec | MemmapSpec"


class TaskDataExport:
    """Main-process owner of the graph+features segment."""

    def __init__(self, segment: shared_memory.SharedMemory,
                 descriptor: TaskDataDescriptor):
        self.segment = segment
        self.descriptor = descriptor

    def close(self) -> None:
        destroy_segment(self.segment)


def export_task_data(dataset) -> TaskDataExport:
    """Export the dataset's CSR graph and features for worker attachment.

    In-RAM features are copied into the shared segment alongside the graph.
    Memory-mapped (out-of-core) features are exported as a
    :class:`MemmapSpec` pointing at their backing file instead — the
    segment then holds only the topology.
    """
    from repro.featurestore.store import is_disk_backed

    graph = dataset.graph
    feats = dataset.features
    disk_backed = is_disk_backed(feats)
    arrays = {
        "indptr": graph.indptr,
        "indices": np.asarray(graph.indices),
    }
    if not disk_backed:
        arrays["features"] = feats
    total = sum(_aligned(np.ascontiguousarray(a).nbytes) for a in arrays.values())
    segment = create_segment(max(total, _ALIGN))
    offset = 0
    specs: Dict[str, ArraySpec] = {}
    for name, arr in arrays.items():
        offset, specs[name] = write_array(segment.buf, offset, arr)
    if disk_backed:
        feature_spec = MemmapSpec(
            path=str(feats.filename),
            dtype=feats.dtype.str,
            shape=tuple(feats.shape),
            offset=int(feats.offset),
        )
    else:
        feature_spec = specs["features"]
    descriptor = TaskDataDescriptor(
        segment_name=segment.name,
        num_nodes=int(graph.num_nodes),
        indptr=specs["indptr"],
        indices=specs["indices"],
        features=feature_spec,
    )
    return TaskDataExport(segment, descriptor)


def attach_task_data(descriptor: TaskDataDescriptor):
    """Worker side: map the segment, return ``(segment, graph, features)``.

    The returned graph is a :class:`~repro.graph.csr.CSRGraph` whose arrays
    are views into the shared segment; the caller must keep the segment
    object alive for as long as the graph is used.  A :class:`MemmapSpec`
    feature source is opened read-only from its backing file.
    """
    from repro.graph.csr import CSRGraph

    segment = shared_memory.SharedMemory(name=descriptor.segment_name)
    graph = CSRGraph(
        read_array(segment.buf, descriptor.indptr),
        read_array(segment.buf, descriptor.indices),
    )
    if isinstance(descriptor.features, MemmapSpec):
        spec = descriptor.features
        features = np.memmap(
            spec.path,
            dtype=np.dtype(spec.dtype),
            mode="r",
            shape=spec.shape,
            offset=spec.offset,
        )
    else:
        features = read_array(segment.buf, descriptor.features)
    return segment, graph, features


# ---------------------------------------------------------------------- #
# result slots
# ---------------------------------------------------------------------- #
class SlotRing:
    """A ring of equal-size main-process-owned result segments.

    The pipeline assigns a free slot to each in-flight sampling task;
    consumed slots are *retired* for ``holdoff`` subsequent batch serves
    before they return to the free list, so NumPy views handed to the
    engine stay valid through the batch (and one successor) that uses
    them.  With ``n_slots >= prefetch_depth + holdoff + 1`` a free slot
    always exists; runs out only if callers leak slots, in which case
    :meth:`acquire` returns ``None`` and the task falls back to pickled
    results.
    """

    def __init__(self, n_slots: int, slot_bytes: int, holdoff: int = 2):
        self.slot_bytes = int(slot_bytes)
        self.holdoff = int(holdoff)
        self._segments: List[shared_memory.SharedMemory] = [
            create_segment(self.slot_bytes) for _ in range(int(n_slots))
        ]
        self._by_name = {seg.name: seg for seg in self._segments}
        self._free: List[str] = [seg.name for seg in self._segments]
        self._retired: List[str] = []
        #: slots pulled from circulation (a possibly-dead worker may still
        #: write them); kept mapped until :meth:`close`, never reused
        self._quarantined: Set[str] = set()

    # ------------------------------------------------------------------ #
    def acquire(self) -> Optional[str]:
        """Name of a free slot (reserved until retired + held off)."""
        return self._free.pop(0) if self._free else None

    def release(self, name: Optional[str]) -> None:
        """Return an acquired-but-unused slot straight to the free list."""
        if name is not None and name not in self._quarantined:
            self._free.append(name)

    def retire(self, name: Optional[str]) -> None:
        """Mark a slot's contents as served; frees slots ``holdoff`` serves
        later."""
        if name is not None and name not in self._quarantined:
            self._retired.append(name)
        while len(self._retired) > self.holdoff:
            self._free.append(self._retired.pop(0))

    def quarantine(self, name: Optional[str]) -> None:
        """Permanently remove one slot from circulation.

        The supervision layer calls this when a task is resubmitted after
        a timeout or worker death: the original worker may still be alive
        and could write the abandoned slot at any time, so it must never
        be handed to another task.  A replacement segment keeps the ring's
        capacity (and the ``n_slots >= depth + holdoff + 1`` free-slot
        invariant) intact.
        """
        if name is None or name in self._quarantined:
            return
        self._quarantined.add(name)
        replacement = create_segment(self.slot_bytes)
        self._segments.append(replacement)
        self._by_name[replacement.name] = replacement
        self._free.append(replacement.name)

    @property
    def quarantined(self) -> int:
        return len(self._quarantined)

    def buffer(self, name: str):
        return self._by_name[name].buf

    def close(self) -> None:
        for seg in self._segments:
            destroy_segment(seg)
        self._segments.clear()
        self._by_name.clear()
        self._free.clear()
        self._retired.clear()
        self._quarantined.clear()
