"""Compute-cost charging helpers.

Strategies execute real numerics but charge *simulated* kernel times derived
from workload counts:

* dense GEMM — FLOPs over achieved throughput;
* SpMM / gather / scatter — memory-bound, bytes over HBM bandwidth;
* neighbor sampling — edges over the device's sampling throughput (or the
  machine's CPU throughput for the DistDGL-style baseline).

A training step costs roughly forward + backward; backward of a GEMM is two
GEMMs, so ``TRAIN_FLOP_FACTOR = 3`` converts forward FLOPs to a full-step
estimate.  The factor is identical for every strategy, so it never affects
strategy *ranking* (the paper drops T_train from comparisons for the same
reason); it only shapes the stacked-bar breakdowns.
"""

from __future__ import annotations

from repro.cluster.spec import ClusterSpec
from repro.cluster.timeline import Timeline

#: forward + backward FLOP multiple of a training step.
TRAIN_FLOP_FACTOR = 3.0
#: bytes read+written per edge per feature element in an SpMM-style kernel.
SPMM_BYTES_PER_ELEMENT = 2 * 8


class ComputeCharger:
    """Charges simulated kernel times to a timeline."""

    def __init__(self, cluster: ClusterSpec, timeline: Timeline):
        self.cluster = cluster
        self.timeline = timeline

    def dense(
        self,
        device: int,
        flops: float,
        phase: str = "train",
        include_backward: bool = True,
    ) -> None:
        """Charge a dense kernel of ``flops`` forward floating-point ops."""
        spec = self.cluster.device_spec(device)
        factor = TRAIN_FLOP_FACTOR if include_backward else 1.0
        self.timeline.charge(device, phase, spec.dense_seconds(flops * factor))

    def spmm(
        self,
        device: int,
        num_edges: int,
        dim: int,
        phase: str = "train",
        include_backward: bool = True,
    ) -> None:
        """Charge an SpMM/segment aggregation over ``num_edges`` messages."""
        spec = self.cluster.device_spec(device)
        nbytes = num_edges * dim * SPMM_BYTES_PER_ELEMENT
        factor = 2.0 if include_backward else 1.0  # backward is one more SpMM
        self.timeline.charge(device, phase, spec.memory_bound_seconds(nbytes * factor))

    def gather(self, device: int, rows: int, dim: int, phase: str = "load") -> None:
        """Charge a row-gather of ``rows x dim`` float64 elements."""
        spec = self.cluster.device_spec(device)
        self.timeline.charge(
            device, phase, spec.memory_bound_seconds(rows * dim * 8 * 2)
        )

    def gpu_sampling(self, device: int, num_edges: int, phase: str = "sample") -> None:
        """Charge GPU-based neighbor sampling of ``num_edges`` edges."""
        spec = self.cluster.device_spec(device)
        self.timeline.charge(device, phase, num_edges / spec.sampling_edges_per_sec)

    def cpu_sampling(self, device: int, num_edges: int, phase: str = "sample") -> None:
        """Charge CPU-based sampling (DistDGL-style baseline, Fig. 7)."""
        m = self.cluster.machine_spec(device)
        per_gpu = m.cpu_sampling_edges_per_sec / max(m.num_gpus, 1)
        self.timeline.charge(device, phase, num_edges / per_gpu)
