"""Communication operators over the simulated cluster.

Because all logical devices live in one process, *numerics* of a collective
are trivial (tensors are shared or summed with autograd-aware ``add_n``);
what the Communicator really does is **cost accounting**: every operator
charges simulated seconds to the participating devices' timeline buckets
using standard collective cost models:

* pairwise **all-to-all** — per device, the max of send/receive volume over
  its bottleneck link, split into intra-machine (PCIe/NVLink) and
  inter-machine (shared NIC) components, plus per-peer latency;
* ring **allreduce** — ``2 (C-1)/C * bytes / bw`` over the slowest link in
  the ring (the paper's DDP gradient sync and NFP's hidden-embedding
  exchange);
* **allgather/broadcast** — each device ships its payload to every peer
  (NFP's computation-graph broadcast).

Forward/backward symmetry: the paper's cost model counts hidden-embedding
volume as ``2 d'`` per node — embedding forward plus gradient backward.
Operators take ``count_backward`` and charge both directions at call time;
the autograd tape handles backward *numerics* automatically because the
"transferred" tensors are the same Python objects.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.cluster.spec import ClusterSpec
from repro.cluster.timeline import Timeline
from repro.tensor.tensor import Tensor, add_n


class Communicator:
    """Collective operators bound to a cluster spec and a timeline."""

    def __init__(self, cluster: ClusterSpec, timeline: Timeline):
        if timeline.num_devices != cluster.num_devices:
            raise ValueError(
                f"timeline has {timeline.num_devices} devices, cluster has "
                f"{cluster.num_devices}"
            )
        self.cluster = cluster
        self.timeline = timeline

    # ------------------------------------------------------------------ #
    # cost primitives
    # ------------------------------------------------------------------ #
    def _charge_pairwise(
        self, bytes_matrix: np.ndarray, phase: str, direction_factor: float
    ) -> None:
        """Charge an all-to-all with per-device payloads ``B[i, j]``.

        ``direction_factor`` is 1.0 for one-way traffic and 2.0 when the
        matching backward-pass transfer is charged up front.
        """
        B = np.asarray(bytes_matrix, dtype=np.float64) * direction_factor
        C = self.cluster.num_devices
        if B.shape != (C, C):
            raise ValueError(f"bytes matrix must be ({C}, {C}), got {B.shape}")
        machines = np.array([self.cluster.machine_of(d) for d in range(C)])
        same = machines[:, None] == machines[None, :]
        off_diag = ~np.eye(C, dtype=bool)
        for i in range(C):
            row_mask = off_diag[i]
            send_intra = B[i, row_mask & same[i]].sum()
            send_inter = B[i, row_mask & ~same[i]].sum()
            recv_intra = B[row_mask & same[i], i].sum()
            recv_inter = B[row_mask & ~same[i], i].sum()
            peer = self.cluster.machine_spec(i).gpu_peer_link()
            inter = self.cluster.inter_machine_link_per_gpu(i)
            n_msgs = int((B[i, row_mask] > 0).sum() + (B[row_mask, i] > 0).sum())
            secs = (
                max(send_intra, recv_intra) / peer.bandwidth
                + max(send_inter, recv_inter) / inter.bandwidth
                + n_msgs * peer.latency
            )
            self.timeline.charge(i, phase, secs)
        telemetry = self.timeline.telemetry
        if telemetry is not None:
            telemetry.count("comm.pairwise_bytes", float(B.sum()), phase=phase)
            telemetry.count("comm.collectives", phase=phase)

    def _ring_allreduce_seconds(self, nbytes: float) -> float:
        """Time of a ring allreduce of ``nbytes`` per device."""
        C = self.cluster.num_devices
        if C == 1:
            return 0.0
        if self.cluster.num_machines > 1:
            link = self.cluster.inter_machine_link_per_gpu(0)
        else:
            link = self.cluster.machines[0].gpu_peer_link()
        return 2.0 * (C - 1) / C * nbytes / link.bandwidth + 2.0 * (C - 1) * link.latency

    # ------------------------------------------------------------------ #
    # structure (non-differentiable) shuffles
    # ------------------------------------------------------------------ #
    def alltoall_bytes(
        self, bytes_matrix: np.ndarray, phase: str, count_backward: bool = False
    ) -> None:
        """Cost-only all-to-all for structural or shape-known payloads.

        ``count_backward=True`` doubles the bandwidth charge, matching
        :meth:`alltoall_tensors` — timing-only execution uses this form for
        hidden-embedding shuffles whose tensor shapes are known from the
        plan.
        """
        self._charge_pairwise(
            bytes_matrix, phase, direction_factor=2.0 if count_backward else 1.0
        )

    def allgather_bytes(self, bytes_per_device: Sequence[float], phase: str) -> None:
        """Cost-only allgather: device ``i`` broadcasts ``bytes[i]`` to all.

        Used for NFP's AllBroadcast of layer-1 computation graphs.
        """
        C = self.cluster.num_devices
        b = np.asarray(bytes_per_device, dtype=np.float64)
        if b.shape != (C,):
            raise ValueError(f"need one payload per device, got shape {b.shape}")
        B = np.tile(b[:, None], (1, C))
        np.fill_diagonal(B, 0.0)
        self._charge_pairwise(B, phase, direction_factor=1.0)

    # ------------------------------------------------------------------ #
    # tensor collectives
    # ------------------------------------------------------------------ #
    def alltoall_tensors(
        self,
        parts: List[List[Optional[Tensor]]],
        phase: str,
        count_backward: bool = True,
    ) -> List[List[Optional[Tensor]]]:
        """All-to-all of tensors: ``out[j][i] = parts[i][j]``.

        The returned objects are the inputs themselves (single-process
        execution), so gradients flow back to the producing device's tape
        automatically; the transfer cost — forward and, when
        ``count_backward``, the matching gradient traffic — is charged here.
        """
        C = self.cluster.num_devices
        if len(parts) != C or any(len(row) != C for row in parts):
            raise ValueError(f"parts must be a {C}x{C} grid")
        B = np.zeros((C, C))
        for i in range(C):
            for j in range(C):
                t = parts[i][j]
                if t is not None and i != j:
                    B[i, j] = t.nbytes
        self._charge_pairwise(B, phase, 2.0 if count_backward else 1.0)
        return [[parts[i][j] for i in range(C)] for j in range(C)]

    def alltoall_many(
        self,
        grids: List[List[List[Optional[Tensor]]]],
        phase: str,
        count_backward: bool = True,
    ) -> List[List[List[Optional[Tensor]]]]:
        """All-to-all several tensor grids as one fused message per pair.

        Real engines pack a destination's partial payloads (e.g. SNP's
        partial sums + self terms, or GAT's numerators + denominators) into
        one buffer per peer; charging them as a single message keeps the
        latency accounting equal to the fused transfer (and to the
        timing-only mode's single bytes-matrix charge).
        """
        C = self.cluster.num_devices
        B = np.zeros((C, C))
        for grid in grids:
            if len(grid) != C or any(len(row) != C for row in grid):
                raise ValueError(f"each grid must be {C}x{C}")
            for i in range(C):
                for j in range(C):
                    t = grid[i][j]
                    if t is not None and i != j:
                        B[i, j] += t.nbytes
        self._charge_pairwise(B, phase, 2.0 if count_backward else 1.0)
        return [
            [[grid[i][j] for i in range(C)] for j in range(C)] for grid in grids
        ]

    def scatter_reduce(
        self,
        contributions: List[List[Optional[Tensor]]],
        phase: str,
        count_backward: bool = True,
    ) -> List[Optional[Tensor]]:
        """Reduce ``contributions[src][owner]`` into one tensor per owner.

        This is the paper's *SparseAllreduce* (NFP Reshuffle stage): every
        device holds a partial result for every owner's destination nodes;
        owner ``o`` receives ``sum_src contributions[src][o]``.  The
        backward pass broadcasts the owner's gradient back to every
        contributor — the same volume — so ``count_backward`` doubles the
        charge, matching the paper's ``2 d'`` per-node accounting.
        """
        C = self.cluster.num_devices
        if len(contributions) != C or any(len(row) != C for row in contributions):
            raise ValueError(f"contributions must be a {C}x{C} grid")
        B = np.zeros((C, C))
        for src in range(C):
            for owner in range(C):
                t = contributions[src][owner]
                if t is not None and src != owner:
                    B[src, owner] = t.nbytes
        self._charge_pairwise(B, phase, 2.0 if count_backward else 1.0)
        out: List[Optional[Tensor]] = []
        for owner in range(C):
            parts = [
                contributions[src][owner]
                for src in range(C)
                if contributions[src][owner] is not None
            ]
            out.append(add_n(parts) if parts else None)
        return out

    def allreduce_gradient_sync(self, nbytes: float, phase: str = "train") -> None:
        """Charge the DDP model-gradient ring allreduce (all strategies)."""
        secs = self._ring_allreduce_seconds(nbytes)
        if secs > 0.0:
            self.timeline.charge_all(phase, secs)
        telemetry = self.timeline.telemetry
        if telemetry is not None:
            telemetry.count("comm.allreduce_bytes", float(nbytes), phase=phase)
