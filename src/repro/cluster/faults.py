"""Deterministic fault injection over the simulated cluster.

Faults are *spec transforms*: a :class:`FaultSchedule` maps an epoch index
to the :class:`~repro.cluster.spec.ClusterSpec` in effect for that epoch,
by cumulatively applying every :class:`FaultEvent` whose epoch has
arrived.  The execution engine never knows a fault happened — it simply
charges simulated time against the degraded spec — which is what lets the
drift detector discover the change from telemetry alone, the way a real
deployment would.

Faults take effect at epoch boundaries only (the bulk-synchronous engine
has no mid-epoch reconfiguration point, and the re-planner also operates
between epochs).  Kinds:

``link_degrade``
    Scale the inter-machine network bandwidth by ``factor`` (< 1 degrades;
    e.g. 0.125 models a 100 GbE link collapsing to ~12.5 Gbps).
``straggler``
    Scale one machine's GPU throughput (compute efficiency and sampling
    rate) by ``factor``.
``cache_shrink``
    Scale the per-GPU feature-cache capacity by ``factor``.
``host_leave``
    Remove machine ``machine`` from the cluster (a spot instance was
    reclaimed).  Membership changes shrink the device set, so the run
    loop must re-partition and may re-plan (DESIGN.md §5.16); ``factor``
    is ignored.
``host_join``
    Add one machine.  ``device_class`` names the joiner's device tier
    (``t4``/``v100``/``a100``/``cpu``, see
    :data:`~repro.cluster.spec.DEVICE_CLASSES`); without it the joiner
    clones machine 0's spec.  ``machine`` is the optional insertion index
    (default: append); ``factor`` additionally scales the joiner's GPU
    throughput (< 1 models a slower spot tier).  A joiner of a different
    class makes the cluster heterogeneous, so the elastic re-partition
    cuts speed-proportional parts (DESIGN.md §5.17).
``recover``
    Discard every earlier fault: the cluster returns to its base spec —
    including membership (left hosts return, joined hosts leave).

Schedules are seeded: ``jitter`` perturbs each event's factor with a
deterministic per-event draw, so two schedules with the same seed produce
bit-identical degraded specs (and therefore identical re-plan epochs),
while different seeds explore nearby severities.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.cluster.spec import ClusterSpec, LinkSpec, device_class
from repro.utils.random import rng_from

FAULT_KINDS = (
    "link_degrade",
    "straggler",
    "cache_shrink",
    "host_leave",
    "host_join",
    "recover",
)

#: Kinds that change cluster *membership* (device count), forcing the run
#: loop through the elastic transition (re-partition + optional re-plan).
MEMBERSHIP_KINDS = ("host_leave", "host_join")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault, applied from ``epoch`` onwards.

    ``factor`` multiplies the affected quantity; ``machine`` selects the
    straggler target (required for ``straggler``, ignored otherwise).
    """

    epoch: int
    kind: str
    factor: float = 1.0
    machine: Optional[int] = None
    #: named device tier of a ``host_join`` joiner (``None`` = clone
    #: machine 0); validated against the device-class registry
    device_class: Optional[str] = None

    def __post_init__(self) -> None:
        if self.epoch < 0:
            raise ValueError(f"fault epoch must be >= 0, got {self.epoch}")
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.kind not in ("recover", "host_leave") and not 0.0 < self.factor:
            raise ValueError(f"fault factor must be positive, got {self.factor}")
        if self.kind in ("straggler", "host_leave") and self.machine is None:
            raise ValueError(
                f"{self.kind} faults need a target machine index"
            )
        if self.device_class is not None:
            if self.kind != "host_join":
                raise ValueError(
                    f"device_class only applies to host_join events, "
                    f"not {self.kind!r}"
                )
            device_class(self.device_class)  # raises on unknown names

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"epoch": self.epoch, "kind": self.kind}
        if self.kind not in ("recover", "host_leave"):
            out["factor"] = self.factor
        if self.machine is not None:
            out["machine"] = self.machine
        if self.device_class is not None:
            out["device_class"] = self.device_class
        return out

    # ------------------------------------------------------------------ #
    def apply(self, cluster: ClusterSpec, factor: float) -> ClusterSpec:
        """Spec with this fault applied at the (possibly jittered) factor."""
        if self.kind == "link_degrade":
            net = cluster.network
            return cluster.with_network(
                LinkSpec(bandwidth=net.bandwidth * factor, latency=net.latency)
            )
        if self.kind == "straggler":
            mspec = cluster.machines[self.machine]
            dev = mspec.device
            slow = dataclasses.replace(
                dev,
                compute_efficiency=dev.compute_efficiency * factor,
                sampling_edges_per_sec=dev.sampling_edges_per_sec * factor,
            )
            return cluster.with_machine(
                self.machine, dataclasses.replace(mspec, device=slow)
            )
        if self.kind == "cache_shrink":
            return cluster.with_cache(cluster.gpu_cache_bytes * factor)
        if self.kind == "host_leave":
            if not 0 <= self.machine < cluster.num_machines:
                raise ValueError(
                    f"host_leave targets machine {self.machine} but the "
                    f"cluster has {cluster.num_machines} machine(s)"
                )
            return cluster.without_machine(self.machine)
        if self.kind == "host_join":
            template = cluster.machines[0]
            if self.device_class is not None:
                # The joiner brings its own device tier (keeping the
                # cluster's GPU-per-machine shape and machine-level links).
                template = dataclasses.replace(
                    template, device=device_class(self.device_class)
                )
            if factor != 1.0:
                dev = template.device
                scaled = dataclasses.replace(
                    dev,
                    compute_efficiency=dev.compute_efficiency * factor,
                    sampling_edges_per_sec=dev.sampling_edges_per_sec * factor,
                )
                template = dataclasses.replace(template, device=scaled)
            return cluster.with_joined_machine(machine=template, index=self.machine)
        raise AssertionError(f"unhandled fault kind {self.kind!r}")


class FaultSchedule:
    """An epoch-indexed, seeded sequence of cluster faults."""

    def __init__(
        self,
        events: Sequence[FaultEvent] = (),
        *,
        seed: int = 0,
        jitter: float = 0.0,
    ):
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        self.events: List[FaultEvent] = sorted(
            events, key=lambda e: (e.epoch, e.kind, e.machine or 0)
        )
        self.seed = int(seed)
        self.jitter = float(jitter)

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    # ------------------------------------------------------------------ #
    def effective_factor(self, index: int) -> float:
        """Event ``index``'s factor after the seeded jitter draw.

        The draw depends only on ``(seed, index)`` — never on call order —
        so any two walks of the schedule agree exactly.
        """
        event = self.events[index]
        if self.jitter == 0.0 or event.kind == "recover":
            return event.factor
        rng = rng_from(self.seed, 0xFA17, index)
        return event.factor * (1.0 + rng.uniform(-self.jitter, self.jitter))

    def events_at(self, epoch: int) -> List[FaultEvent]:
        """Events that newly take effect exactly at ``epoch``."""
        return [e for e in self.events if e.epoch == epoch]

    def cluster_at(self, base: ClusterSpec, epoch: int) -> ClusterSpec:
        """The spec in effect for ``epoch``: all due faults, cumulatively.

        A ``recover`` event resets to ``base`` before later faults apply.
        """
        cluster = base
        for index, event in enumerate(self.events):
            if event.epoch > epoch:
                break
            if event.kind == "recover":
                cluster = base
            else:
                cluster = event.apply(cluster, self.effective_factor(index))
        return cluster

    # ------------------------------------------------------------------ #
    # (de)serialization — the CLI's ``--inject`` file format
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "jitter": self.jitter,
            "events": [e.to_dict() for e in self.events],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultSchedule":
        events = [FaultEvent(**entry) for entry in payload.get("events", ())]
        return cls(
            events,
            seed=int(payload.get("seed", 0)),
            jitter=float(payload.get("jitter", 0.0)),
        )

    @classmethod
    def from_json(cls, source: Union[str, os.PathLike]) -> "FaultSchedule":
        """Parse a schedule from a JSON string or a file path."""
        text = str(source)
        if not text.lstrip().startswith("{"):
            with open(text) as fh:
                text = fh.read()
        return cls.from_dict(json.loads(text))
