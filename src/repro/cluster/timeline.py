"""Per-device, per-phase simulated-time accounting.

The paper decomposes epoch time as ``T = T_build + T_load + T_shuffle +
T_train`` (Eq. 2) and reports stacked breakdowns of *sampling / loading /
training* in Figs. 8-11 (graph-structure shuffling is folded into sampling,
hidden-embedding shuffling into training).  :class:`Timeline` mirrors that:

* strategies charge simulated seconds to ``(device, phase)`` buckets;
* a per-minibatch barrier models bulk-synchronous execution — the epoch
  advances by the *slowest* device's batch time, so load imbalance (e.g.
  SNP/DNP's partition-skewed seed assignment) costs real simulated time;
* per-phase epoch totals are the sum over batches of the per-batch
  max-over-devices, so the stacked breakdown adds up to the wall time.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

#: Phase keys.  ``sample`` includes graph-structure shuffling (T_build);
#: ``load`` is input-feature loading (T_load); ``train`` is model compute
#: (T_train); ``shuffle`` is hidden-embedding exchange (T_shuffle).
PHASES = ("sample", "load", "train", "shuffle")

#: Reporting groups used by the paper's stacked bars.
PAPER_BREAKDOWN = {
    "sampling": ("sample",),
    "loading": ("load",),
    "training": ("train", "shuffle"),
}


#: phases that belong to the data-preparation pipeline stage when
#: prefetch overlap is modeled (sampling + feature loading of batch i+1
#: can run while batch i trains).
PREP_PHASES = ("sample", "load")


class Timeline:
    """Simulated-time ledger for one epoch (or more) of execution.

    Parameters
    ----------
    num_devices:
        Logical GPU count.
    overlap:
        Model prefetch pipelining: with ``overlap=True`` a batch costs
        ``max(prep, compute)`` per device instead of ``prep + compute``,
        where prep = sampling + loading and compute = training + hidden
        shuffling — the steady-state throughput of a two-stage pipeline
        (DGL-style prefetching dataloaders).  Default off, matching the
        paper's additive Eq. 2 decomposition.
    trace:
        Keep per-batch, per-device phase snapshots so the run can be
        exported with :meth:`to_chrome_trace`.
    telemetry:
        Optional :class:`~repro.obs.telemetry.TelemetryCollector` that each
        barrier emits a ``batch`` event into.  Pure observation — the
        collector never feeds back into any charged time.
    """

    def __init__(
        self,
        num_devices: int,
        overlap: bool = False,
        trace: bool = False,
        telemetry=None,
    ):
        if num_devices <= 0:
            raise ValueError(f"num_devices must be positive, got {num_devices}")
        self.num_devices = int(num_devices)
        self.overlap = bool(overlap)
        self.trace = bool(trace)
        self.telemetry = telemetry
        #: per-batch snapshots of the per-device phase deltas (trace mode)
        self._trace_batches: list = []
        # Whole-run phase totals per device.
        self._device_phase = np.zeros((self.num_devices, len(PHASES)))
        # Current-batch deltas per device.
        self._batch_delta = np.zeros((self.num_devices, len(PHASES)))
        # Synchronized epoch totals.
        self._wall = 0.0
        self._phase_wall = np.zeros(len(PHASES))
        self._batches = 0
        self._prep_idx = np.array([PHASES.index(p) for p in PREP_PHASES])
        self._compute_idx = np.array(
            [i for i in range(len(PHASES)) if i not in self._prep_idx]
        )

    # ------------------------------------------------------------------ #
    def charge(self, device: int, phase: str, seconds: float) -> None:
        """Charge ``seconds`` of simulated time to one device and phase."""
        if seconds < 0:
            raise ValueError(f"cannot charge negative time: {seconds}")
        p = PHASES.index(phase)
        self._device_phase[device, p] += seconds
        self._batch_delta[device, p] += seconds

    def charge_all(self, phase: str, seconds: float) -> None:
        """Charge the same time to every device (symmetric collectives)."""
        p = PHASES.index(phase)
        self._device_phase[:, p] += seconds
        self._batch_delta[:, p] += seconds

    def end_batch(self) -> float:
        """Apply the bulk-synchronous barrier; returns this batch's time.

        The batch costs the maximum per-device total; each phase's wall
        contribution is that phase's maximum across devices, so the stacked
        per-phase breakdown sums to (an upper estimate within the batch of)
        the wall time.  With ``overlap=True`` the per-device total is
        ``max(prep, compute)`` (prefetch pipelining).
        """
        if self.trace:
            self._trace_batches.append(
                (self._wall, self._batch_delta.copy())
            )
        if self.overlap:
            prep = self._batch_delta[:, self._prep_idx].sum(axis=1)
            compute = self._batch_delta[:, self._compute_idx].sum(axis=1)
            batch_wall = float(np.maximum(prep, compute).max())
        else:
            batch_wall = float(self._batch_delta.sum(axis=1).max())
        if self.telemetry is not None:
            straggler = int(self._batch_delta.sum(axis=1).argmax())
            self.telemetry.emit(
                "batch",
                sim_time=self._wall + batch_wall,
                device=straggler,
                batch=self._batches,
                wall=batch_wall,
            )
            self.telemetry.count("batches")
        self._wall += batch_wall
        self._phase_wall += self._batch_delta.max(axis=0)
        self._batch_delta[:] = 0.0
        self._batches += 1
        return batch_wall

    # ------------------------------------------------------------------ #
    @property
    def wall_seconds(self) -> float:
        """Synchronized total time (sum of per-batch maxima)."""
        return self._wall

    @property
    def num_batches(self) -> int:
        return self._batches

    def phase_seconds(self, phase: str) -> float:
        """Synchronized time attributed to ``phase``."""
        return float(self._phase_wall[PHASES.index(phase)])

    def device_phase_seconds(self, device: int, phase: str) -> float:
        return float(self._device_phase[device, PHASES.index(phase)])

    def breakdown(self) -> Dict[str, float]:
        """Per-phase synchronized times keyed by phase name."""
        return {p: float(self._phase_wall[i]) for i, p in enumerate(PHASES)}

    def paper_breakdown(self) -> Dict[str, float]:
        """The paper's three-way split: sampling / loading / training."""
        return {
            label: sum(self.phase_seconds(p) for p in phases)
            for label, phases in PAPER_BREAKDOWN.items()
        }

    def to_chrome_trace(self) -> list:
        """Export the run as Chrome-trace events (``chrome://tracing``).

        Requires ``trace=True`` at construction.  Each simulated GPU is one
        "thread"; within a batch, a device's phases are laid out in the
        canonical order (sample, load, train, shuffle) starting at the
        batch's barrier-aligned start time.  Durations are simulated
        seconds expressed in microseconds (the trace format's unit).
        """
        if not self.trace:
            raise RuntimeError("timeline was not constructed with trace=True")
        events = []
        for batch_idx, (start, deltas) in enumerate(self._trace_batches):
            for dev in range(self.num_devices):
                cursor = start
                for p_idx, phase in enumerate(PHASES):
                    dur = float(deltas[dev, p_idx])
                    if dur <= 0.0:
                        continue
                    events.append(
                        {
                            "name": phase,
                            "cat": f"batch{batch_idx}",
                            "ph": "X",
                            "ts": cursor * 1e6,
                            "dur": dur * 1e6,
                            "pid": 0,
                            "tid": dev,
                        }
                    )
                    cursor += dur
        return events

    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, object]:
        """Everything accumulated so far, for checkpoint/resume.

        Restoring this onto a fresh :class:`Timeline` of the same device
        count continues the ledger exactly where it stopped — resumed runs
        charge identical simulated time (``tests/core/test_checkpoint.py``).
        """
        return {
            "device_phase": self._device_phase.copy(),
            "batch_delta": self._batch_delta.copy(),
            "wall": float(self._wall),
            "phase_wall": self._phase_wall.copy(),
            "batches": int(self._batches),
            "trace_batches": [
                (start, delta.copy()) for start, delta in self._trace_batches
            ],
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        device_phase = np.asarray(state["device_phase"], dtype=float)
        if device_phase.shape != self._device_phase.shape:
            raise ValueError(
                f"timeline state is for {device_phase.shape[0]} devices, "
                f"this timeline has {self.num_devices}"
            )
        self._device_phase[...] = device_phase
        self._batch_delta[...] = np.asarray(state["batch_delta"], dtype=float)
        self._wall = float(state["wall"])
        self._phase_wall[...] = np.asarray(state["phase_wall"], dtype=float)
        self._batches = int(state["batches"])
        self._trace_batches = [
            (float(start), np.asarray(delta, dtype=float).copy())
            for start, delta in state.get("trace_batches", [])
        ]

    def merged(self, other: "Timeline") -> "Timeline":
        """Element-wise sum of two timelines (multi-epoch aggregation)."""
        if other.num_devices != self.num_devices:
            raise ValueError("cannot merge timelines with different device counts")
        out = Timeline(self.num_devices)
        out._device_phase = self._device_phase + other._device_phase
        out._wall = self._wall + other._wall
        out._phase_wall = self._phase_wall + other._phase_wall
        out._batches = self._batches + other._batches
        return out
