"""Simulated multi-GPU cluster.

The paper's testbed (AWS g4dn.metal: 8x NVIDIA T4 per machine on PCIe 3.0,
4 machines on 100 Gbps Ethernet) is substituted by *logical devices*:
strategies execute real numerics in-process while an analytical timeline
model charges simulated seconds per device and phase, using the public
hardware constants of the paper's platform.  The paper's findings are about
relative costs (shuffle volume vs cache hits vs compute), which depend on
bandwidth/throughput *ratios* that this model preserves.
"""

from repro.cluster.spec import (
    DEVICE_CLASSES,
    ClusterSpec,
    DeviceSpec,
    LinkSpec,
    MachineSpec,
    device_class,
    multi_machine_cluster,
    parse_cluster_spec,
    single_machine_cluster,
)
from repro.cluster.timeline import PHASES, Timeline
from repro.cluster.comm import Communicator
from repro.cluster.faults import FAULT_KINDS, FaultEvent, FaultSchedule

__all__ = [
    "DeviceSpec",
    "LinkSpec",
    "MachineSpec",
    "ClusterSpec",
    "single_machine_cluster",
    "multi_machine_cluster",
    "parse_cluster_spec",
    "device_class",
    "DEVICE_CLASSES",
    "Timeline",
    "PHASES",
    "Communicator",
    "FaultEvent",
    "FaultSchedule",
    "FAULT_KINDS",
]
