"""Hardware specifications for the simulated cluster.

Default constants model the paper's platform (Section 5.1 / Appendix A):
AWS ``g4dn.metal`` — 96-core Xeon 8259CL, 8x NVIDIA T4 (16 GB) on PCIe 3.0
x16, machines linked by 100 Gbps Ethernet.  Public datasheet numbers:

* T4 FP32 peak            ~8.1 TFLOP/s (GNN kernels reach a fraction of it)
* T4 GDDR6 bandwidth      ~320 GB/s
* PCIe 3.0 x16 effective  ~12 GB/s per direction
* 100 GbE                 ~12.5 GB/s per machine, shared by its GPUs
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class DeviceSpec:
    """One GPU's compute/memory characteristics."""

    name: str = "T4"
    peak_flops: float = 8.1e12
    #: Fraction of peak FLOPs that sparse-ish GNN kernels actually achieve.
    compute_efficiency: float = 0.22
    mem_bandwidth: float = 320e9
    memory_bytes: float = 16e9
    #: GPU-based neighbor-sampling throughput (edges/s), cf. gSampler-style
    #: on-GPU sampling the paper's implementation uses.
    sampling_edges_per_sec: float = 2.5e8

    def dense_seconds(self, flops: float) -> float:
        """Simulated time for a dense kernel of ``flops`` floating ops."""
        return flops / (self.peak_flops * self.compute_efficiency)

    def memory_bound_seconds(self, bytes_touched: float) -> float:
        """Simulated time for a memory-bound kernel (SpMM, gather)."""
        return bytes_touched / self.mem_bandwidth


@dataclass(frozen=True)
class LinkSpec:
    """A communication link: bandwidth (bytes/s) and per-message latency."""

    bandwidth: float
    latency: float = 0.0

    def seconds(self, nbytes: float, messages: int = 1) -> float:
        check_positive("bandwidth", self.bandwidth)
        return nbytes / self.bandwidth + messages * self.latency


@dataclass(frozen=True)
class MachineSpec:
    """One machine: its GPUs and intra-machine links."""

    num_gpus: int = 8
    device: DeviceSpec = field(default_factory=DeviceSpec)
    #: GPU <-> host link (UVA feature reads, GPU-GPU staging without NVLink).
    pcie: LinkSpec = field(default_factory=lambda: LinkSpec(bandwidth=12e9, latency=8e-6))
    #: Fast GPU <-> GPU link; ``None`` models the T4 platform (no NVLink),
    #: in which case peer-GPU traffic goes over PCIe.
    nvlink: Optional[LinkSpec] = None
    #: Local NVMe storage serving the out-of-core feature tier
    #: (``Tier.DISK``): sequential-read bandwidth plus a per-ranged-read
    #: setup latency (seek + submission).  g4dn.metal ships 2x 900 GB
    #: NVMe; ~2 GB/s effective and ~100 us per read request.
    disk: LinkSpec = field(default_factory=lambda: LinkSpec(bandwidth=2e9, latency=1e-4))
    #: CPU-based sampling throughput (edges/s) across the whole machine;
    #: used by the DistDGL-style baseline in the Fig. 7 sanity check.
    cpu_sampling_edges_per_sec: float = 2.5e7

    def gpu_peer_link(self) -> LinkSpec:
        """The link used for intra-machine GPU-to-GPU transfers."""
        return self.nvlink if self.nvlink is not None else self.pcie


@dataclass(frozen=True)
class ClusterSpec:
    """A cluster of identical machines plus the interconnect between them."""

    machines: Tuple[MachineSpec, ...]
    network: LinkSpec = field(default_factory=lambda: LinkSpec(bandwidth=12.5e9, latency=3e-5))
    #: Per-GPU feature-cache capacity in bytes (paper default: 4 GB,
    #: rescaled by benchmarks to the analog datasets' feature sizes).
    gpu_cache_bytes: float = 0.0

    # ------------------------------------------------------------------ #
    @property
    def num_machines(self) -> int:
        return len(self.machines)

    @property
    def num_devices(self) -> int:
        return sum(m.num_gpus for m in self.machines)

    @property
    def gpus_per_machine(self) -> int:
        return self.machines[0].num_gpus

    def device_spec(self, device: int) -> DeviceSpec:
        return self.machines[self.machine_of(device)].device

    def machine_of(self, device: int) -> int:
        """Machine index hosting global device id ``device``."""
        remaining = device
        for m_idx, m in enumerate(self.machines):
            if remaining < m.num_gpus:
                return m_idx
            remaining -= m.num_gpus
        raise IndexError(f"device {device} out of range ({self.num_devices})")

    def same_machine(self, a: int, b: int) -> bool:
        return self.machine_of(a) == self.machine_of(b)

    def machine_spec(self, device: int) -> MachineSpec:
        return self.machines[self.machine_of(device)]

    def devices_of_machine(self, machine: int) -> List[int]:
        start = sum(m.num_gpus for m in self.machines[:machine])
        return list(range(start, start + self.machines[machine].num_gpus))

    def inter_machine_link_per_gpu(self, device: int) -> LinkSpec:
        """Effective inter-machine link seen by one GPU (NIC is shared)."""
        m = self.machine_spec(device)
        return LinkSpec(
            bandwidth=self.network.bandwidth / max(m.num_gpus, 1),
            latency=self.network.latency,
        )

    def with_cache(self, gpu_cache_bytes: float) -> "ClusterSpec":
        """Copy of the spec with a different per-GPU cache capacity."""
        return ClusterSpec(
            machines=self.machines,
            network=self.network,
            gpu_cache_bytes=gpu_cache_bytes,
        )

    def with_network(self, network: LinkSpec) -> "ClusterSpec":
        """Copy of the spec with a different inter-machine interconnect."""
        return ClusterSpec(
            machines=self.machines,
            network=network,
            gpu_cache_bytes=self.gpu_cache_bytes,
        )

    def with_machine(self, index: int, machine: MachineSpec) -> "ClusterSpec":
        """Copy of the spec with machine ``index`` replaced.

        The replacement must keep the GPU count (device ids are positional);
        heterogeneous *performance* across machines is exactly what the
        fault layer injects.
        """
        if not 0 <= index < self.num_machines:
            raise IndexError(f"machine {index} out of range ({self.num_machines})")
        if machine.num_gpus != self.machines[index].num_gpus:
            raise ValueError(
                "replacement machine must keep the GPU count "
                f"({machine.num_gpus} != {self.machines[index].num_gpus})"
            )
        machines = list(self.machines)
        machines[index] = machine
        return ClusterSpec(
            machines=tuple(machines),
            network=self.network,
            gpu_cache_bytes=self.gpu_cache_bytes,
        )

    # -- elastic membership transforms (DESIGN.md §5.16) ---------------- #
    def without_machine(self, index: int) -> "ClusterSpec":
        """Copy of the spec with machine ``index`` removed (a host left).

        Device ids stay positional: the surviving machines' GPUs are
        re-indexed densely (``machine_of``/``devices_of_machine`` shift
        down), which is why a membership change forces a re-partition —
        the old node->device assignment points at ids that no longer mean
        the same hardware.
        """
        if not 0 <= index < self.num_machines:
            raise IndexError(f"machine {index} out of range ({self.num_machines})")
        if self.num_machines == 1:
            raise ValueError(
                "cannot remove the last machine: a cluster needs at least "
                "one host (schedule a recover/host_join first)"
            )
        machines = self.machines[:index] + self.machines[index + 1:]
        return ClusterSpec(
            machines=machines,
            network=self.network,
            gpu_cache_bytes=self.gpu_cache_bytes,
        )

    def with_joined_machine(
        self,
        machine: Optional[MachineSpec] = None,
        index: Optional[int] = None,
    ) -> "ClusterSpec":
        """Copy of the spec with one machine added (a host joined).

        ``machine`` defaults to a clone of ``machines[0]`` — a spot
        instance of the cluster's own tier; ``index`` is the insertion
        position (default: append).  Devices re-index positionally, so the
        join forces a re-partition just like a leave.
        """
        if machine is None:
            machine = self.machines[0]
        if index is None:
            index = self.num_machines
        if not 0 <= index <= self.num_machines:
            raise IndexError(
                f"join index {index} out of range (0..{self.num_machines})"
            )
        machines = self.machines[:index] + (machine,) + self.machines[index:]
        return ClusterSpec(
            machines=machines,
            network=self.network,
            gpu_cache_bytes=self.gpu_cache_bytes,
        )


def single_machine_cluster(
    num_gpus: int = 8,
    gpu_cache_bytes: float = 0.0,
    *,
    device: Optional[DeviceSpec] = None,
    nvlink: Optional[LinkSpec] = None,
) -> ClusterSpec:
    """The paper's single-machine testbed: one g4dn.metal with 8 T4 GPUs."""
    check_positive("num_gpus", num_gpus)
    machine = MachineSpec(
        num_gpus=num_gpus,
        device=device or DeviceSpec(),
        nvlink=nvlink,
    )
    return ClusterSpec(machines=(machine,), gpu_cache_bytes=gpu_cache_bytes)


def multi_machine_cluster(
    num_machines: int = 4,
    gpus_per_machine: int = 4,
    gpu_cache_bytes: float = 0.0,
    *,
    device: Optional[DeviceSpec] = None,
    network: Optional[LinkSpec] = None,
) -> ClusterSpec:
    """The paper's distributed testbed: 4 machines x 4 T4 GPUs, 100 GbE."""
    check_positive("num_machines", num_machines)
    check_positive("gpus_per_machine", gpus_per_machine)
    machine = MachineSpec(num_gpus=gpus_per_machine, device=device or DeviceSpec())
    return ClusterSpec(
        machines=tuple(machine for _ in range(num_machines)),
        network=network or LinkSpec(bandwidth=12.5e9, latency=3e-5),
        gpu_cache_bytes=gpu_cache_bytes,
    )
