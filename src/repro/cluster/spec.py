"""Hardware specifications for the simulated cluster.

Default constants model the paper's platform (Section 5.1 / Appendix A):
AWS ``g4dn.metal`` — 96-core Xeon 8259CL, 8x NVIDIA T4 (16 GB) on PCIe 3.0
x16, machines linked by 100 Gbps Ethernet.  Public datasheet numbers:

* T4 FP32 peak            ~8.1 TFLOP/s (GNN kernels reach a fraction of it)
* T4 GDDR6 bandwidth      ~320 GB/s
* PCIe 3.0 x16 effective  ~12 GB/s per direction
* 100 GbE                 ~12.5 GB/s per machine, shared by its GPUs
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class DeviceSpec:
    """One GPU's compute/memory characteristics."""

    name: str = "T4"
    peak_flops: float = 8.1e12
    #: Fraction of peak FLOPs that sparse-ish GNN kernels actually achieve.
    compute_efficiency: float = 0.22
    mem_bandwidth: float = 320e9
    memory_bytes: float = 16e9
    #: GPU-based neighbor-sampling throughput (edges/s), cf. gSampler-style
    #: on-GPU sampling the paper's implementation uses.
    sampling_edges_per_sec: float = 2.5e8
    #: On-demand price of one device, in dollars per hour.  Feeds the
    #: planner's second objective (``CostEstimate.dollars``).
    dollars_per_hour: float = 0.526

    def dense_seconds(self, flops: float) -> float:
        """Simulated time for a dense kernel of ``flops`` floating ops."""
        return flops / (self.peak_flops * self.compute_efficiency)

    def memory_bound_seconds(self, bytes_touched: float) -> float:
        """Simulated time for a memory-bound kernel (SpMM, gather)."""
        return bytes_touched / self.mem_bandwidth

    @property
    def effective_flops(self) -> float:
        """Sustained GNN throughput — the partitioner's speed weight."""
        return self.peak_flops * self.compute_efficiency

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "DeviceSpec":
        return cls(**d)


#: Named device classes for the ``--cluster`` grammar and ``host_join``.
#: Prices follow on-demand AWS list prices (per GPU, instance price split
#: across its GPUs); throughputs follow public datasheets with the same
#: GNN-efficiency derating as the T4 baseline.
DEVICE_CLASSES: Dict[str, DeviceSpec] = {
    # The paper's platform: g4dn.metal T4s.
    "t4": DeviceSpec(),
    # p3 V100: ~2x the T4's sustained GNN throughput.
    "v100": DeviceSpec(
        name="V100",
        peak_flops=15.7e12,
        compute_efficiency=0.24,
        mem_bandwidth=900e9,
        memory_bytes=16e9,
        sampling_edges_per_sec=5.0e8,
        dollars_per_hour=3.06,
    ),
    # p4d A100: ~4x the T4's sustained GNN throughput.
    "a100": DeviceSpec(
        name="A100",
        peak_flops=19.5e12,
        compute_efficiency=0.37,
        mem_bandwidth=1555e9,
        memory_bytes=40e9,
        sampling_edges_per_sec=1.0e9,
        dollars_per_hour=4.10,
    ),
    # CPU-only worker modeled as a very slow "device": cheap, but it
    # samples and trains at a fraction of any GPU tier.
    "cpu": DeviceSpec(
        name="CPU",
        peak_flops=1.0e12,
        compute_efficiency=0.10,
        mem_bandwidth=80e9,
        memory_bytes=64e9,
        sampling_edges_per_sec=2.5e7,
        dollars_per_hour=0.17,
    ),
}


def device_class(name: str) -> DeviceSpec:
    """Look up a named device class (case-insensitive)."""
    try:
        return DEVICE_CLASSES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown device class {name!r} "
            f"(known: {', '.join(sorted(DEVICE_CLASSES))})"
        ) from None


@dataclass(frozen=True)
class LinkSpec:
    """A communication link: bandwidth (bytes/s) and per-message latency."""

    bandwidth: float
    latency: float = 0.0

    def seconds(self, nbytes: float, messages: int = 1) -> float:
        check_positive("bandwidth", self.bandwidth)
        return nbytes / self.bandwidth + messages * self.latency


@dataclass(frozen=True)
class MachineSpec:
    """One machine: its GPUs and intra-machine links."""

    num_gpus: int = 8
    device: DeviceSpec = field(default_factory=DeviceSpec)
    #: GPU <-> host link (UVA feature reads, GPU-GPU staging without NVLink).
    pcie: LinkSpec = field(default_factory=lambda: LinkSpec(bandwidth=12e9, latency=8e-6))
    #: Fast GPU <-> GPU link; ``None`` models the T4 platform (no NVLink),
    #: in which case peer-GPU traffic goes over PCIe.
    nvlink: Optional[LinkSpec] = None
    #: Local NVMe storage serving the out-of-core feature tier
    #: (``Tier.DISK``): sequential-read bandwidth plus a per-ranged-read
    #: setup latency (seek + submission).  g4dn.metal ships 2x 900 GB
    #: NVMe; ~2 GB/s effective and ~100 us per read request.
    disk: LinkSpec = field(default_factory=lambda: LinkSpec(bandwidth=2e9, latency=1e-4))
    #: CPU-based sampling throughput (edges/s) across the whole machine;
    #: used by the DistDGL-style baseline in the Fig. 7 sanity check.
    cpu_sampling_edges_per_sec: float = 2.5e7

    def gpu_peer_link(self) -> LinkSpec:
        """The link used for intra-machine GPU-to-GPU transfers."""
        return self.nvlink if self.nvlink is not None else self.pcie

    def to_dict(self) -> dict:
        return {
            "num_gpus": self.num_gpus,
            "device": self.device.to_dict(),
            "pcie": asdict(self.pcie),
            "nvlink": None if self.nvlink is None else asdict(self.nvlink),
            "disk": asdict(self.disk),
            "cpu_sampling_edges_per_sec": self.cpu_sampling_edges_per_sec,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "MachineSpec":
        return cls(
            num_gpus=d["num_gpus"],
            device=DeviceSpec.from_dict(d["device"]),
            pcie=LinkSpec(**d["pcie"]),
            nvlink=None if d.get("nvlink") is None else LinkSpec(**d["nvlink"]),
            disk=LinkSpec(**d["disk"]),
            cpu_sampling_edges_per_sec=d["cpu_sampling_edges_per_sec"],
        )


@dataclass(frozen=True)
class ClusterSpec:
    """A cluster of machines plus the interconnect between them.

    Machines may carry different device classes (mixed fast/slow GPU
    tiers, CPU-only workers); ``device_weights`` exposes the resulting
    per-device speed profile to the partitioner and the planner.
    """

    machines: Tuple[MachineSpec, ...]
    network: LinkSpec = field(default_factory=lambda: LinkSpec(bandwidth=12.5e9, latency=3e-5))
    #: Per-GPU feature-cache capacity in bytes (paper default: 4 GB,
    #: rescaled by benchmarks to the analog datasets' feature sizes).
    gpu_cache_bytes: float = 0.0

    # ------------------------------------------------------------------ #
    @property
    def num_machines(self) -> int:
        return len(self.machines)

    @property
    def num_devices(self) -> int:
        return sum(m.num_gpus for m in self.machines)

    @property
    def gpus_per_machine(self) -> int:
        return self.machines[0].num_gpus

    def device_spec(self, device: int) -> DeviceSpec:
        return self.machines[self.machine_of(device)].device

    def machine_of(self, device: int) -> int:
        """Machine index hosting global device id ``device``."""
        remaining = device
        for m_idx, m in enumerate(self.machines):
            if remaining < m.num_gpus:
                return m_idx
            remaining -= m.num_gpus
        raise IndexError(f"device {device} out of range ({self.num_devices})")

    def same_machine(self, a: int, b: int) -> bool:
        return self.machine_of(a) == self.machine_of(b)

    def machine_spec(self, device: int) -> MachineSpec:
        return self.machines[self.machine_of(device)]

    def devices_of_machine(self, machine: int) -> List[int]:
        start = sum(m.num_gpus for m in self.machines[:machine])
        return list(range(start, start + self.machines[machine].num_gpus))

    def inter_machine_link_per_gpu(self, device: int) -> LinkSpec:
        """Effective inter-machine link seen by one GPU (NIC is shared)."""
        m = self.machine_spec(device)
        return LinkSpec(
            bandwidth=self.network.bandwidth / max(m.num_gpus, 1),
            latency=self.network.latency,
        )

    # -- heterogeneity (DESIGN.md §5.17) -------------------------------- #
    @property
    def is_heterogeneous(self) -> bool:
        """True when at least two devices differ in spec or links."""
        first = self.machines[0]
        return any(
            m.device != first.device
            or m.pcie != first.pcie
            or m.nvlink != first.nvlink
            or m.disk != first.disk
            for m in self.machines[1:]
        )

    def device_weights(self) -> List[float]:
        """Per-device partition weights, normalized to sum to 1.

        Proportional to each device's sustained compute throughput
        (``effective_flops``): a device that trains twice as fast should
        own twice the nodes so every device finishes a batch together.
        """
        flops = [self.device_spec(d).effective_flops
                 for d in range(self.num_devices)]
        total = sum(flops)
        return [f / total for f in flops]

    def dollars_per_hour(self) -> float:
        """Aggregate on-demand price of the cluster's devices ($/hour)."""
        return sum(
            m.num_gpus * m.device.dollars_per_hour for m in self.machines
        )

    def to_dict(self) -> dict:
        return {
            "machines": [m.to_dict() for m in self.machines],
            "network": asdict(self.network),
            "gpu_cache_bytes": self.gpu_cache_bytes,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ClusterSpec":
        return cls(
            machines=tuple(MachineSpec.from_dict(m) for m in d["machines"]),
            network=LinkSpec(**d["network"]),
            gpu_cache_bytes=d["gpu_cache_bytes"],
        )

    def with_cache(self, gpu_cache_bytes: float) -> "ClusterSpec":
        """Copy of the spec with a different per-GPU cache capacity."""
        return ClusterSpec(
            machines=self.machines,
            network=self.network,
            gpu_cache_bytes=gpu_cache_bytes,
        )

    def with_network(self, network: LinkSpec) -> "ClusterSpec":
        """Copy of the spec with a different inter-machine interconnect."""
        return ClusterSpec(
            machines=self.machines,
            network=network,
            gpu_cache_bytes=self.gpu_cache_bytes,
        )

    def with_machine(self, index: int, machine: MachineSpec) -> "ClusterSpec":
        """Copy of the spec with machine ``index`` replaced.

        The replacement must keep the GPU count (device ids are positional);
        heterogeneous *performance* across machines is exactly what the
        fault layer injects.
        """
        if not 0 <= index < self.num_machines:
            raise IndexError(f"machine {index} out of range ({self.num_machines})")
        if machine.num_gpus != self.machines[index].num_gpus:
            raise ValueError(
                "replacement machine must keep the GPU count "
                f"({machine.num_gpus} != {self.machines[index].num_gpus})"
            )
        machines = list(self.machines)
        machines[index] = machine
        return ClusterSpec(
            machines=tuple(machines),
            network=self.network,
            gpu_cache_bytes=self.gpu_cache_bytes,
        )

    # -- elastic membership transforms (DESIGN.md §5.16) ---------------- #
    def without_machine(self, index: int) -> "ClusterSpec":
        """Copy of the spec with machine ``index`` removed (a host left).

        Device ids stay positional: the surviving machines' GPUs are
        re-indexed densely (``machine_of``/``devices_of_machine`` shift
        down), which is why a membership change forces a re-partition —
        the old node->device assignment points at ids that no longer mean
        the same hardware.
        """
        if not 0 <= index < self.num_machines:
            raise IndexError(f"machine {index} out of range ({self.num_machines})")
        if self.num_machines == 1:
            raise ValueError(
                "cannot remove the last machine: a cluster needs at least "
                "one host (schedule a recover/host_join first)"
            )
        machines = self.machines[:index] + self.machines[index + 1:]
        return ClusterSpec(
            machines=machines,
            network=self.network,
            gpu_cache_bytes=self.gpu_cache_bytes,
        )

    def with_joined_machine(
        self,
        machine: Optional[MachineSpec] = None,
        index: Optional[int] = None,
    ) -> "ClusterSpec":
        """Copy of the spec with one machine added (a host joined).

        ``machine`` defaults to a clone of ``machines[0]`` — a spot
        instance of the cluster's own tier; ``index`` is the insertion
        position (default: append).  Devices re-index positionally, so the
        join forces a re-partition just like a leave.
        """
        if machine is None:
            machine = self.machines[0]
        if index is None:
            index = self.num_machines
        if not 0 <= index <= self.num_machines:
            raise IndexError(
                f"join index {index} out of range (0..{self.num_machines})"
            )
        machines = self.machines[:index] + (machine,) + self.machines[index:]
        return ClusterSpec(
            machines=machines,
            network=self.network,
            gpu_cache_bytes=self.gpu_cache_bytes,
        )


def single_machine_cluster(
    num_gpus: int = 8,
    gpu_cache_bytes: float = 0.0,
    *,
    device: Optional[DeviceSpec] = None,
    nvlink: Optional[LinkSpec] = None,
) -> ClusterSpec:
    """The paper's single-machine testbed: one g4dn.metal with 8 T4 GPUs."""
    check_positive("num_gpus", num_gpus)
    machine = MachineSpec(
        num_gpus=num_gpus,
        device=device or DeviceSpec(),
        nvlink=nvlink,
    )
    return ClusterSpec(machines=(machine,), gpu_cache_bytes=gpu_cache_bytes)


def multi_machine_cluster(
    num_machines: int = 4,
    gpus_per_machine: int = 4,
    gpu_cache_bytes: float = 0.0,
    *,
    device: Optional[DeviceSpec] = None,
    network: Optional[LinkSpec] = None,
) -> ClusterSpec:
    """The paper's distributed testbed: 4 machines x 4 T4 GPUs, 100 GbE."""
    check_positive("num_machines", num_machines)
    check_positive("gpus_per_machine", gpus_per_machine)
    machine = MachineSpec(num_gpus=gpus_per_machine, device=device or DeviceSpec())
    return ClusterSpec(
        machines=tuple(machine for _ in range(num_machines)),
        network=network or LinkSpec(bandwidth=12.5e9, latency=3e-5),
        gpu_cache_bytes=gpu_cache_bytes,
    )


def parse_cluster_spec(
    spec: str,
    gpu_cache_bytes: float = 0.0,
    *,
    network: Optional[LinkSpec] = None,
) -> ClusterSpec:
    """Build a (possibly mixed) cluster from a compact spec string.

    Grammar: comma-separated machine groups, each
    ``<machines>x<gpus>:<class>`` — e.g. ``"1x4:a100,2x4:t4"`` is one
    4xA100 machine plus two 4xT4 machines.  ``<machines>x`` defaults to 1
    and ``:<class>`` defaults to ``t4``, so ``"2x8"`` and ``"8:v100"``
    are both valid.  Classes come from :data:`DEVICE_CLASSES`.
    """
    machines: List[MachineSpec] = []
    for group in spec.split(","):
        group = group.strip()
        if not group:
            raise ValueError(f"empty machine group in cluster spec {spec!r}")
        if ":" in group:
            shape, cls_name = group.split(":", 1)
        else:
            shape, cls_name = group, "t4"
        if "x" in shape:
            count_s, gpus_s = shape.split("x", 1)
        else:
            count_s, gpus_s = "1", shape
        try:
            count, gpus = int(count_s), int(gpus_s)
        except ValueError:
            raise ValueError(
                f"bad machine group {group!r} in cluster spec {spec!r} "
                "(expected <machines>x<gpus>:<class>)"
            ) from None
        check_positive("machines", count)
        check_positive("gpus", gpus)
        device = device_class(cls_name)
        machines.extend(
            MachineSpec(num_gpus=gpus, device=device) for _ in range(count)
        )
    return ClusterSpec(
        machines=tuple(machines),
        network=network or LinkSpec(bandwidth=12.5e9, latency=3e-5),
        gpu_cache_bytes=gpu_cache_bytes,
    )
