"""Task configuration (:class:`APTConfig`) plus experiment-scale constants.

:class:`APTConfig` is the validated home of everything that used to be a
keyword argument of ``APT.__init__``: the sampling setup, the partition
mode, the seeds, and the online-adaptivity knobs (telemetry, drift
threshold, re-plan candidates).  ``APT(dataset, model, cluster, config)``
is the supported surface; the old kwargs still work for one release behind
a ``DeprecationWarning``.

The experiment-scale constants below are shared by benchmarks and
examples.  The analog datasets are ~1000x smaller than the paper's graphs,
so byte budgets are expressed as *fractions of the dataset's feature
matrix* using the paper's ratios: the default 4 GB per-GPU cache covers
7.6% / 6.4% / 3.1% of the PS / FS / IM feature matrices (Table 2), and the
same fraction of the analog's features reproduces the same cache-hit
economics.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from repro.graph.datasets import GraphDataset

#: Strategies the planner may choose from (paper's candidate set).
PLAN_STRATEGIES = ("gdp", "nfp", "snp", "dnp")


def _env_flag(name: str, default: bool) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in ("0", "false", "no", "off", "")


@dataclass
class ElasticPolicy:
    """How the run loop reacts to cluster-membership faults (§5.16).

    A ``host_leave``/``host_join`` event changes the device count, which
    invalidates the node->device partition.  When ``enabled``, the run
    loop quiesces the backend, checkpoints, re-partitions for the new
    device set, and (when ``replan`` is also set) re-runs the planner
    against the new :class:`~repro.cluster.spec.ClusterSpec`, hot-switching
    strategy if the ranking changed.  When disabled, a membership event
    raises instead of silently training on a stale partition.
    """

    #: survive membership changes (env ``REPRO_ELASTIC``; default on)
    enabled: bool = field(
        default_factory=lambda: _env_flag("REPRO_ELASTIC", True)
    )
    #: re-run the planner after a membership change and hot-switch if the
    #: ranking changed (env ``REPRO_ELASTIC_REPLAN``; default on).  Only
    #: consulted when the run itself has ``replan`` candidates enabled.
    replan: bool = field(
        default_factory=lambda: _env_flag("REPRO_ELASTIC_REPLAN", True)
    )
    #: take (or reuse) an atomic epoch checkpoint before re-partitioning,
    #: so the post-change tail is resumable/bit-reproducible
    checkpoint_on_change: bool = True
    #: refuse to shrink below this many devices
    min_devices: int = 1

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> "ElasticPolicy":
        self.enabled = bool(self.enabled)
        self.replan = bool(self.replan)
        self.checkpoint_on_change = bool(self.checkpoint_on_change)
        if int(self.min_devices) < 1:
            raise ValueError(
                f"min_devices must be >= 1, got {self.min_devices}"
            )
        self.min_devices = int(self.min_devices)
        return self

    def to_dict(self) -> Dict[str, Any]:
        return {
            f.name: getattr(self, f.name) for f in dataclasses.fields(self)
        }


@dataclass
class APTConfig:
    """Validated configuration of one APT training task.

    Groups the former ``APT.__init__`` kwargs (task shape, partitioning,
    seeding, engine modes) with the online-adaptivity subsystem's knobs.
    Validation happens at construction *and* can be re-run with
    :meth:`validate` after field mutation (``APT`` re-validates before
    every plan/run).
    """

    # ---- task shape -------------------------------------------------- #
    #: node-wise sampling fanouts, input layer first
    fanouts: Tuple[int, ...] = (10, 10, 10)
    #: seeds per synchronized step, summed over GPUs
    global_batch_size: int = 1024
    #: ``"metis"``, ``"streaming"`` (coarsen-once, bounded memory — the
    #: out-of-core default), ``"random"``, or an explicit node->device array
    partition: Union[str, np.ndarray] = "metis"
    seed: int = 0
    #: relative measurement error of the bandwidth-profiling trials
    bandwidth_noise: float = 0.02
    # ---- engine modes ------------------------------------------------ #
    cpu_sampling: bool = False
    compute_skew: bool = True
    overlap: bool = False
    #: byte budget (MiB) of the sampled-epoch reuse cache shared by the
    #: dry-runs, census, and training runs; 0 disables reuse entirely.
    #: Wall-clock only — cached batches are bit-identical to fresh ones.
    sample_cache_mb: int = 256
    # ---- execution backend (host wall-clock only, DESIGN.md §5.10) --- #
    #: ``"serial"`` (default) runs every per-device loop inline;
    #: ``"process"`` fans sampling out to a shared-memory worker pool with
    #: pipelined batch prefetch.  Bit-identical losses / parameters /
    #: simulated Timeline either way — only host seconds change.  The env
    #: var ``REPRO_EXECUTION_BACKEND`` overrides the default (CI runs the
    #: whole suite through the process backend this way).
    execution_backend: str = field(
        default_factory=lambda: os.environ.get("REPRO_EXECUTION_BACKEND", "serial")
    )
    #: worker processes of the process backend; 0 = auto (min(4, cores)).
    num_workers: int = field(
        default_factory=lambda: int(os.environ.get("REPRO_NUM_WORKERS", "0"))
    )
    #: global batches sampled ahead of the training loop (process backend);
    #: 0 disables pipelining but keeps the worker-pool sampling path.
    prefetch_depth: int = field(
        default_factory=lambda: int(os.environ.get("REPRO_PREFETCH_DEPTH", "2"))
    )
    #: also prefetch ``features[input_nodes]`` in workers for strategies
    #: whose load set is the input set (GDP).  Pays off only when workers
    #: overlap a numerics-bound main process, hence off by default.
    gather_prefetch: bool = False
    # ---- out-of-core feature tier (DESIGN.md §5.14) ------------------- #
    #: byte budget (MiB) of CPU-resident hot rows promoted out of the disk
    #: tier for memmap-backed datasets; 0 disables promotion entirely and
    #: ``None`` defers to ``REPRO_DISK_PROMOTE_MB`` (default 64).  In-RAM
    #: datasets ignore this field.
    disk_promote_mb: Optional[int] = None
    # ---- fault tolerance (process backend + checkpointing) ----------- #
    #: supervision knobs of the process backend — a
    #: :class:`~repro.parallel.supervisor.FaultPolicy` or a dict of its
    #: fields; ``None`` uses the policy's env-overridable defaults.
    fault_policy: Optional[Any] = None
    #: deliberate host-fault schedule for the process backend — a
    #: :class:`~repro.parallel.chaos.HostFaultSchedule`, a dict, or a
    #: ``kind@task[:seconds]`` grammar string; ``None`` defers to the
    #: ``REPRO_CHAOS`` environment variable.
    host_chaos: Optional[Any] = None
    #: directory for epoch-granular run checkpoints; ``None`` disables
    #: checkpointing (see ``repro run --checkpoint-dir`` / ``--resume``).
    checkpoint_dir: Optional[str] = None
    #: epochs between checkpoints (the last epoch is always saved)
    checkpoint_every: int = 1
    #: checkpoints retained per directory (keep-last-N pruning)
    checkpoint_keep: int = 3
    #: elastic-membership behavior — an :class:`ElasticPolicy` or a dict
    #: of its fields; ``None`` means the policy's env-overridable defaults
    #: (elastic on, re-plan on).  See DESIGN.md §5.16.
    elastic_policy: Optional[Any] = None
    # ---- online adaptivity ------------------------------------------- #
    #: attach a TelemetryCollector to every run (pure observation)
    telemetry: bool = True
    #: re-plan mid-run when observed phase times drift off the estimates
    replan: bool = False
    #: relative-error trigger of the drift detector (see repro.obs.drift)
    drift_threshold: float = 0.35
    #: candidate strategies for (re-)planning
    strategies: Tuple[str, ...] = PLAN_STRATEGIES
    #: epochs to wait after a re-plan before the detector may fire again
    replan_cooldown: int = 1

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------------ #
    def validate(self) -> "APTConfig":
        """Check every field; returns self so calls chain."""
        self.fanouts = tuple(int(f) for f in self.fanouts)
        if not self.fanouts or any(f <= 0 for f in self.fanouts):
            raise ValueError(f"fanouts must be positive ints, got {self.fanouts}")
        if int(self.global_batch_size) <= 0:
            raise ValueError(
                f"global_batch_size must be positive, got {self.global_batch_size}"
            )
        self.global_batch_size = int(self.global_batch_size)
        if isinstance(self.partition, str):
            if self.partition not in ("metis", "streaming", "random"):
                raise ValueError(
                    f"partition must be 'metis', 'streaming', 'random', or an "
                    f"explicit node->device array, got {self.partition!r}"
                )
        else:
            self.partition = np.asarray(self.partition, dtype=np.int64)
            if self.partition.ndim != 1:
                raise ValueError("explicit partition must be a 1-D node->device array")
        self.seed = int(self.seed)
        if not 0.0 <= float(self.bandwidth_noise) < 0.5:
            raise ValueError(
                f"bandwidth_noise must be in [0, 0.5), got {self.bandwidth_noise}"
            )
        if float(self.drift_threshold) <= 0.0:
            raise ValueError(
                f"drift_threshold must be positive, got {self.drift_threshold}"
            )
        self.strategies = tuple(str(s).lower() for s in self.strategies)
        unknown = []
        for s in self.strategies:
            if s in PLAN_STRATEGIES + ("hyb",):
                continue
            if s.startswith("layerwise:"):
                # Lazy import: config stays importable without the engine.
                from repro.engine.layerwise import parse_layerwise

                parse_layerwise(s)  # raises ValueError when malformed
                continue
            unknown.append(s)
        if not self.strategies or unknown:
            raise ValueError(
                f"strategies must be a non-empty subset of "
                f"{PLAN_STRATEGIES + ('hyb',)} plus 'layerwise:...' specs, "
                f"got {self.strategies}"
            )
        if int(self.replan_cooldown) < 0:
            raise ValueError(
                f"replan_cooldown must be >= 0, got {self.replan_cooldown}"
            )
        self.replan_cooldown = int(self.replan_cooldown)
        if int(self.sample_cache_mb) < 0:
            raise ValueError(
                f"sample_cache_mb must be >= 0 (0 disables reuse), got "
                f"{self.sample_cache_mb}"
            )
        self.sample_cache_mb = int(self.sample_cache_mb)
        if self.execution_backend not in ("serial", "process"):
            raise ValueError(
                f"execution_backend must be 'serial' or 'process', got "
                f"{self.execution_backend!r}"
            )
        self.num_workers = self._int_field(
            "num_workers",
            self.num_workers,
            minimum=0,
            maximum=1024,
            hint="0 = auto (min(4, cores)); set via --workers or "
            "REPRO_NUM_WORKERS",
        )
        self.prefetch_depth = self._int_field(
            "prefetch_depth",
            self.prefetch_depth,
            minimum=0,
            maximum=256,
            hint="0 disables pipelining; each unit preallocates one "
            "shared-memory result slot, so large values exhaust /dev/shm — "
            "set via --prefetch-depth or REPRO_PREFETCH_DEPTH",
        )
        self.gather_prefetch = bool(self.gather_prefetch)
        if self.disk_promote_mb is not None:
            self.disk_promote_mb = self._int_field(
                "disk_promote_mb",
                self.disk_promote_mb,
                minimum=0,
                maximum=1_048_576,
                hint="MiB of hot disk-tier rows kept CPU-resident; 0 disables "
                "promotion, None defers to REPRO_DISK_PROMOTE_MB",
            )
        self._validate_fault_fields()
        return self

    @staticmethod
    def _int_field(name: str, value: Any, *, minimum: int, maximum: int,
                   hint: str) -> int:
        """Reject non-integers and out-of-range values *at construction*,
        with a message that names the field, the limits, and the knobs —
        instead of an opaque failure deep inside pool startup."""
        if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
            raise ValueError(
                f"{name} must be an integer in [{minimum}, {maximum}], "
                f"got {value!r} ({type(value).__name__}); {hint}"
            )
        value = int(value)
        if not minimum <= value <= maximum:
            raise ValueError(
                f"{name} must be in [{minimum}, {maximum}], got {value}; "
                f"{hint}"
            )
        return value

    def _validate_fault_fields(self) -> None:
        """Coerce ``fault_policy`` / ``host_chaos`` / checkpoint knobs."""
        if self.fault_policy is not None:
            from repro.parallel.supervisor import FaultPolicy

            if isinstance(self.fault_policy, dict):
                self.fault_policy = FaultPolicy(**self.fault_policy)
            elif not isinstance(self.fault_policy, FaultPolicy):
                raise ValueError(
                    f"fault_policy must be a FaultPolicy or a dict of its "
                    f"fields, got {type(self.fault_policy).__name__}"
                )
            self.fault_policy.validate()
        if self.host_chaos is not None:
            from repro.parallel.chaos import HostFaultSchedule

            if isinstance(self.host_chaos, str):
                self.host_chaos = HostFaultSchedule.parse(self.host_chaos)
            elif isinstance(self.host_chaos, dict):
                self.host_chaos = HostFaultSchedule.from_dict(self.host_chaos)
            elif not isinstance(self.host_chaos, HostFaultSchedule):
                raise ValueError(
                    f"host_chaos must be a HostFaultSchedule, a dict, or a "
                    f"'kind@task[:seconds]' string, got "
                    f"{type(self.host_chaos).__name__}"
                )
        if self.checkpoint_dir is not None:
            self.checkpoint_dir = str(self.checkpoint_dir)
        self.checkpoint_every = self._int_field(
            "checkpoint_every",
            self.checkpoint_every,
            minimum=1,
            maximum=1_000_000,
            hint="epochs between checkpoints; set via --checkpoint-every",
        )
        self.checkpoint_keep = self._int_field(
            "checkpoint_keep",
            self.checkpoint_keep,
            minimum=1,
            maximum=1_000_000,
            hint="checkpoints retained per directory; set via "
            "--checkpoint-keep",
        )
        if self.elastic_policy is not None:
            if isinstance(self.elastic_policy, dict):
                self.elastic_policy = ElasticPolicy(**self.elastic_policy)
            elif not isinstance(self.elastic_policy, ElasticPolicy):
                raise ValueError(
                    f"elastic_policy must be an ElasticPolicy or a dict of "
                    f"its fields, got {type(self.elastic_policy).__name__}"
                )
            self.elastic_policy.validate()

    def replace(self, **changes: Any) -> "APTConfig":
        """Validated copy with ``changes`` applied."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict (explicit partitions summarized, not embedded)."""
        out = {
            f.name: getattr(self, f.name) for f in dataclasses.fields(self)
        }
        if isinstance(self.partition, np.ndarray):
            out["partition"] = f"<explicit:{self.partition.size} nodes>"
        out["fanouts"] = list(self.fanouts)
        out["strategies"] = list(self.strategies)
        if self.fault_policy is not None:
            out["fault_policy"] = self.fault_policy.to_dict()
        if self.host_chaos is not None:
            out["host_chaos"] = self.host_chaos.to_dict()
        if self.elastic_policy is not None:
            out["elastic_policy"] = self.elastic_policy.to_dict()
        return out

#: Serve-side cache policies (see repro.serve.cache).
SERVE_CACHE_POLICIES = ("adaptive", "static")


@dataclass
class ServeConfig:
    """Validated configuration of one serving session (``repro serve``).

    Groups the dynamic-batching policy, the cache-adaptation knobs, and
    the drift detector's trigger — the serving analogue of
    :class:`APTConfig`'s online-adaptivity section.  See DESIGN.md §5.13.
    """

    #: dynamic batching: close a batch at this many requests ...
    max_batch_size: int = 32
    #: ... or this many simulated seconds after its first request.
    max_wait_s: float = 0.002
    #: ``"adaptive"`` re-keys the GPU feature cache from observed request
    #: hotness when drift fires; ``"static"`` keeps the training census
    #: keying for the whole session (the fixed baseline).
    cache_policy: str = "adaptive"
    #: relative-error trigger of the serve-side drift detector
    drift_threshold: float = 0.35
    #: batches per drift-detection window
    drift_window: int = 8
    #: hotness-count decay applied at each cache refresh (sliding window)
    cache_decay: float = 0.5

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> "ServeConfig":
        if int(self.max_batch_size) <= 0:
            raise ValueError(
                f"max_batch_size must be positive, got {self.max_batch_size}"
            )
        self.max_batch_size = int(self.max_batch_size)
        if float(self.max_wait_s) < 0.0:
            raise ValueError(
                f"max_wait_s must be >= 0, got {self.max_wait_s}"
            )
        self.max_wait_s = float(self.max_wait_s)
        if self.cache_policy not in SERVE_CACHE_POLICIES:
            raise ValueError(
                f"cache_policy must be one of {SERVE_CACHE_POLICIES}, got "
                f"{self.cache_policy!r}"
            )
        if float(self.drift_threshold) <= 0.0:
            raise ValueError(
                f"drift_threshold must be positive, got {self.drift_threshold}"
            )
        if int(self.drift_window) <= 0:
            raise ValueError(
                f"drift_window must be positive, got {self.drift_window}"
            )
        self.drift_window = int(self.drift_window)
        if not 0.0 <= float(self.cache_decay) <= 1.0:
            raise ValueError(
                f"cache_decay must be in [0, 1], got {self.cache_decay}"
            )
        return self

    def replace(self, **changes: Any) -> "ServeConfig":
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        return {
            f.name: getattr(self, f.name) for f in dataclasses.fields(self)
        }


#: Feature-matrix sizes of the paper's datasets (Table 2), in GB.
PAPER_FEATURE_GB = {"ps": 52.9, "fs": 62.6, "im": 128.0}

#: The paper's default per-GPU cache (Section 5.1).
PAPER_CACHE_GB = 4.0

#: The paper's per-GPU minibatch size; benchmarks scale it down with the
#: graphs so each epoch still spans several global batches.
PAPER_BATCH_PER_GPU = 1024
SCALED_BATCH_PER_GPU = 256

#: Paper-default sampling fanouts (input layer first).
DEFAULT_FANOUTS = (10, 10, 10)


def scaled_gpu_cache_bytes(
    dataset: GraphDataset, cache_gb: float = PAPER_CACHE_GB
) -> float:
    """Per-GPU cache bytes covering the same feature fraction as the paper.

    ``cache_gb`` is interpreted against the *paper's* feature size for the
    dataset's analog family ("ps"/"fs"/"im"); unknown names fall back to the
    PS ratio.
    """
    paper_gb = PAPER_FEATURE_GB.get(dataset.name, PAPER_FEATURE_GB["ps"])
    fraction = cache_gb / paper_gb
    return fraction * dataset.feature_bytes
