"""Experiment-scale configuration shared by benchmarks and examples.

The analog datasets are ~1000x smaller than the paper's graphs, so byte
budgets are expressed as *fractions of the dataset's feature matrix* using
the paper's ratios: the default 4 GB per-GPU cache covers 7.6% / 6.4% /
3.1% of the PS / FS / IM feature matrices (Table 2), and the same fraction
of the analog's features reproduces the same cache-hit economics.
"""

from __future__ import annotations

from repro.graph.datasets import GraphDataset

#: Feature-matrix sizes of the paper's datasets (Table 2), in GB.
PAPER_FEATURE_GB = {"ps": 52.9, "fs": 62.6, "im": 128.0}

#: The paper's default per-GPU cache (Section 5.1).
PAPER_CACHE_GB = 4.0

#: The paper's per-GPU minibatch size; benchmarks scale it down with the
#: graphs so each epoch still spans several global batches.
PAPER_BATCH_PER_GPU = 1024
SCALED_BATCH_PER_GPU = 256

#: Paper-default sampling fanouts (input layer first).
DEFAULT_FANOUTS = (10, 10, 10)


def scaled_gpu_cache_bytes(
    dataset: GraphDataset, cache_gb: float = PAPER_CACHE_GB
) -> float:
    """Per-GPU cache bytes covering the same feature fraction as the paper.

    ``cache_gb`` is interpreted against the *paper's* feature size for the
    dataset's analog family ("ps"/"fs"/"im"); unknown names fall back to the
    PS ratio.
    """
    paper_gb = PAPER_FEATURE_GB.get(dataset.name, PAPER_FEATURE_GB["ps"])
    fraction = cache_gb / paper_gb
    return fraction * dataset.feature_bytes
