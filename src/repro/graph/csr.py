"""Compressed-sparse-row graph storage.

The graph is stored as the CSR of *in*-neighbors: ``neighbors(v)`` returns
the message sources ``u`` with an edge ``u -> v``.  GNN aggregation reads
exactly this adjacency direction.  Generators produce undirected graphs and
symmetrize, so in- and out-neighborhoods coincide for the datasets shipped
here, but the class itself is direction-aware.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.sparse as sp

from repro.utils.validation import check_index_array


class CSRGraph:
    """An immutable graph in CSR (in-neighbor) layout.

    Attributes
    ----------
    indptr:
        ``(num_nodes + 1,)`` int64 row pointer.
    indices:
        ``(num_edges,)`` int64 concatenated in-neighbor lists.
    """

    __slots__ = ("indptr", "indices", "num_nodes")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray):
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        if self.indptr.ndim != 1 or self.indptr[0] != 0:
            raise ValueError("indptr must be 1-D and start at 0")
        if self.indptr[-1] != self.indices.shape[0]:
            raise ValueError(
                f"indptr[-1]={self.indptr[-1]} does not match "
                f"len(indices)={self.indices.shape[0]}"
            )
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        self.num_nodes = self.indptr.shape[0] - 1
        check_index_array("indices", self.indices, self.num_nodes)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edges(
        cls,
        src: np.ndarray,
        dst: np.ndarray,
        num_nodes: int,
        *,
        symmetrize: bool = True,
        dedupe: bool = True,
    ) -> "CSRGraph":
        """Build from an edge list ``src -> dst``.

        ``symmetrize=True`` adds the reverse edge for every input edge
        (undirected semantics).  Self-loops and (optionally) duplicate edges
        are removed; the sampler re-inserts a self-edge per destination at
        block-construction time, so the stored topology stays clean.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise ValueError("src/dst must have the same shape")
        check_index_array("src", src, num_nodes)
        check_index_array("dst", dst, num_nodes)
        if symmetrize:
            src, dst = (
                np.concatenate([src, dst]),
                np.concatenate([dst, src]),
            )
        keep = src != dst
        src, dst = src[keep], dst[keep]
        if dedupe and src.size:
            # scipy's COO->CSR conversion merges duplicates in compiled code,
            # which is much faster than a Python-side unique over packed keys.
            data = np.ones(src.shape[0], dtype=np.float64)
            mat = sp.coo_matrix(
                (data, (dst, src)), shape=(num_nodes, num_nodes)
            ).tocsr()
            return cls(mat.indptr.astype(np.int64), mat.indices.astype(np.int64))
        order = np.argsort(dst, kind="stable")
        src, dst = src[order], dst[order]
        counts = np.bincount(dst, minlength=num_nodes)
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr, src)

    @classmethod
    def from_scipy(cls, mat: sp.spmatrix) -> "CSRGraph":
        """Build from a square scipy sparse matrix (``mat[v, u] != 0`` means
        ``u -> v``)."""
        csr = mat.tocsr()
        if csr.shape[0] != csr.shape[1]:
            raise ValueError(f"adjacency must be square, got {csr.shape}")
        return cls(csr.indptr.astype(np.int64), csr.indices.astype(np.int64))

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def num_edges(self) -> int:
        return int(self.indices.shape[0])

    @property
    def in_degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def neighbors(self, v: int) -> np.ndarray:
        """In-neighbors of ``v`` (zero-copy view)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def neighbor_slices(self, nodes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Start/stop offsets of the neighbor lists of ``nodes``."""
        nodes = np.asarray(nodes, dtype=np.int64)
        return self.indptr[nodes], self.indptr[nodes + 1]

    def to_scipy(self) -> sp.csr_matrix:
        data = np.ones(self.num_edges, dtype=np.float64)
        return sp.csr_matrix(
            (data, self.indices, self.indptr), shape=(self.num_nodes, self.num_nodes)
        )

    def one_hop_closure(self, nodes: np.ndarray) -> np.ndarray:
        """Return ``nodes`` plus all their in-neighbors (sorted unique).

        Used by the DNP cache policy (partition plus 1-hop halo, paper §3.2).
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        starts, stops = self.neighbor_slices(nodes)
        lens = stops - starts
        total = int(lens.sum())
        if total == 0:
            return np.unique(nodes)
        # Vectorized ragged gather: absolute indices of every neighbor slot.
        offsets = np.cumsum(lens) - lens
        flat = np.repeat(starts - offsets, lens) + np.arange(total)
        halo = self.indices[flat]
        # Presence mask over the node space: same sorted-unique result as
        # unique(concatenate(...)) without sorting the (large) halo.
        mask = np.zeros(self.num_nodes, dtype=bool)
        mask[nodes] = True
        mask[halo] = True
        return np.flatnonzero(mask)

    def topology_bytes(self) -> int:
        """Size of the CSR arrays in bytes (feeds the data-layout model)."""
        return self.indptr.nbytes + self.indices.nbytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSRGraph(num_nodes={self.num_nodes}, num_edges={self.num_edges})"
