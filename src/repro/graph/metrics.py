"""Partition-quality and access-skewness metrics.

Used by the partitioner tests, by the Table 3 skewness benchmark, and by the
SNP/DNP strategies to reason about locality.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph.csr import CSRGraph


def edge_cut_fraction(graph: CSRGraph, parts: np.ndarray) -> float:
    """Fraction of edges whose endpoints lie in different parts."""
    parts = np.asarray(parts, dtype=np.int64)
    if parts.shape != (graph.num_nodes,):
        raise ValueError(
            f"parts shape {parts.shape} != ({graph.num_nodes},)"
        )
    if graph.num_edges == 0:
        return 0.0
    src = np.repeat(np.arange(graph.num_nodes), np.diff(graph.indptr))
    cut = int((parts[src] != parts[graph.indices]).sum())
    return cut / graph.num_edges


def partition_balance(parts: np.ndarray, num_parts: int) -> float:
    """Max part size over ideal part size (1.0 = perfectly balanced)."""
    counts = np.bincount(np.asarray(parts, dtype=np.int64), minlength=num_parts)
    ideal = counts.sum() / num_parts
    return float(counts.max() / ideal) if ideal > 0 else 1.0


def replication_factor(graph: CSRGraph, parts: np.ndarray) -> float:
    """Average number of parts each node's closed neighborhood touches.

    A locality measure for DNP-style halo caching: a node whose neighbors
    span many parts will be replicated into many GPU halos.
    """
    parts = np.asarray(parts, dtype=np.int64)
    num_parts = int(parts.max()) + 1 if parts.size else 1
    src = np.repeat(np.arange(graph.num_nodes), np.diff(graph.indptr))
    # Distinct (dst-node, src-part) pairs, plus the node's own part.
    key = src * np.int64(num_parts) + parts[graph.indices]
    own = np.arange(graph.num_nodes, dtype=np.int64) * num_parts + parts
    distinct = np.unique(np.concatenate([key, own]))
    return distinct.size / graph.num_nodes


def access_skewness_table(
    frequencies: np.ndarray,
    bands: Sequence[float] = (0.01, 0.05, 0.10, 0.20, 0.50, 1.00),
) -> dict:
    """Paper Table 3: share of total accesses captured by top-ranked nodes.

    Parameters
    ----------
    frequencies:
        Per-node access counts (how often each node appeared in sampled
        subgraphs during one epoch).
    bands:
        Cumulative rank fractions; the default reproduces the paper's
        ``<1% / 1-5% / 5-10% / 10-20% / 20-50% / 50-100%`` rows.

    Returns
    -------
    Mapping from band label (e.g. ``"1%~5%"``) to the fraction of all
    accesses made to nodes in that rank band.
    """
    freq = np.sort(np.asarray(frequencies, dtype=np.float64))[::-1]
    total = freq.sum()
    if total <= 0:
        raise ValueError("frequencies sum to zero; run a dry-run first")
    cum = np.cumsum(freq) / total
    n = freq.size
    out = {}
    prev_frac, prev_cum = 0.0, 0.0
    for frac in bands:
        idx = max(int(round(frac * n)) - 1, 0)
        c = cum[idx]
        label = (
            f"<{int(frac * 100)}%"
            if prev_frac == 0.0
            else f"{int(prev_frac * 100)}%~{int(frac * 100)}%"
        )
        out[label] = float(c - prev_cum)
        prev_frac, prev_cum = frac, c
    return out
