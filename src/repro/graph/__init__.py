"""Graph substrate: CSR storage, synthetic generators, datasets, partitioning.

The paper evaluates on OGBN-Papers100M, Friendster, and IGB260M.  Those
graphs (52-128 GB of features) cannot be hosted here, so
:mod:`repro.graph.datasets` provides *scale-model analogs* generated to match
the statistics the paper's evaluation attributes the strategy trade-offs to:
node-access skewness under fanout sampling (paper Table 3), degree skew, and
feature dimensionality.  :mod:`repro.graph.partition` provides a multilevel
edge-cut partitioner standing in for METIS, plus the random baseline used in
paper Fig. 11.
"""

from repro.graph.csr import CSRGraph
from repro.graph.datasets import GraphDataset, fs_like, im_like, load_dataset, ps_like
from repro.graph.generators import power_law_graph, rmat_graph, community_graph
from repro.graph.io import (
    is_dataset_dir,
    load_dataset_file,
    load_partition,
    open_streaming_dataset,
    save_dataset,
    save_partition,
    write_dataset_dir,
    write_streaming_dataset,
)
from repro.graph.metrics import edge_cut_fraction, partition_balance, replication_factor
from repro.graph.partition import (
    hash_partition,
    metis_like_partition,
    random_partition,
    streaming_partition,
)

__all__ = [
    "CSRGraph",
    "GraphDataset",
    "ps_like",
    "fs_like",
    "im_like",
    "load_dataset",
    "power_law_graph",
    "rmat_graph",
    "community_graph",
    "metis_like_partition",
    "random_partition",
    "hash_partition",
    "streaming_partition",
    "save_dataset",
    "load_dataset_file",
    "is_dataset_dir",
    "open_streaming_dataset",
    "write_dataset_dir",
    "write_streaming_dataset",
    "save_partition",
    "load_partition",
    "edge_cut_fraction",
    "partition_balance",
    "replication_factor",
]
