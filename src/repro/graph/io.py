"""Dataset and partition persistence (NumPy ``.npz`` containers).

Generating an analog and a METIS-like partition takes seconds; benchmark
sessions and downstream users can persist them once and reload instantly.
"""

from __future__ import annotations

import pathlib
from typing import Optional, Union

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.datasets import GraphDataset

PathLike = Union[str, pathlib.Path]


def save_dataset(dataset: GraphDataset, path: PathLike) -> None:
    """Serialize a :class:`GraphDataset` to one compressed ``.npz`` file."""
    payload = {
        "name": np.array(dataset.name),
        "indptr": dataset.graph.indptr,
        "indices": dataset.graph.indices,
        "features": dataset.features,
        "labels": dataset.labels,
        "train_seeds": dataset.train_seeds,
        "num_classes": np.array(dataset.num_classes),
    }
    if dataset.communities is not None:
        payload["communities"] = dataset.communities
    np.savez_compressed(path, **payload)


def load_dataset_file(path: PathLike) -> GraphDataset:
    """Load a :class:`GraphDataset` saved by :func:`save_dataset`."""
    with np.load(path, allow_pickle=False) as data:
        graph = CSRGraph(data["indptr"], data["indices"])
        return GraphDataset(
            name=str(data["name"]),
            graph=graph,
            features=data["features"],
            labels=data["labels"].astype(np.int64),
            train_seeds=data["train_seeds"].astype(np.int64),
            num_classes=int(data["num_classes"]),
            communities=(
                data["communities"].astype(np.int64)
                if "communities" in data
                else None
            ),
        )


def read_edgelist(
    path: PathLike,
    num_nodes: Optional[int] = None,
    *,
    comments: str = "#",
    symmetrize: bool = True,
) -> CSRGraph:
    """Build a :class:`CSRGraph` from a whitespace-separated edge-list file.

    Each non-comment line must start with two integer node ids (extra
    columns, e.g. weights/timestamps, are ignored) — the format SNAP
    datasets such as the real Friendster ship in.
    """
    import warnings

    with warnings.catch_warnings():
        # Empty inputs are reported explicitly below, not via the numpy
        # "input contained no data" warning.
        warnings.simplefilter("ignore", UserWarning)
        edges = np.loadtxt(
            path, comments=comments, usecols=(0, 1), dtype=np.int64, ndmin=2
        )
    if edges.size == 0:
        raise ValueError(f"no edges found in {path}")
    if num_nodes is None:
        num_nodes = int(edges.max()) + 1
    return CSRGraph.from_edges(
        edges[:, 0], edges[:, 1], num_nodes, symmetrize=symmetrize
    )


def write_edgelist(graph: CSRGraph, path: PathLike) -> None:
    """Write a graph's directed edges as a whitespace edge list."""
    src = np.repeat(np.arange(graph.num_nodes), np.diff(graph.indptr))
    np.savetxt(
        path,
        np.column_stack([graph.indices, src]),  # u -> v as "u v"
        fmt="%d",
        header="source target",
        comments="# ",
    )


def save_partition(parts: np.ndarray, path: PathLike) -> None:
    """Persist a node->device partition array."""
    np.savez_compressed(path, parts=np.asarray(parts, dtype=np.int64))


def load_partition(path: PathLike) -> np.ndarray:
    """Load a partition saved by :func:`save_partition`."""
    with np.load(path, allow_pickle=False) as data:
        return data["parts"].astype(np.int64)
