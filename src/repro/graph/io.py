"""Dataset and partition persistence.

Two formats:

* **``.npz`` containers** (:func:`save_dataset` / :func:`load_dataset_file`)
  for the in-RAM analogs — generating one takes seconds, loading is instant.
* **Streaming dataset directories** (:func:`write_streaming_dataset` /
  :func:`open_streaming_dataset`) for out-of-core graphs: topology and
  labels as ``.npy`` files plus a raw ``features.dat`` written chunk by
  chunk and opened as a read-only ``np.memmap``.  Features are never fully
  resident — neither while generating nor while training — which is what
  activates the feature store's disk tier (DESIGN.md §5.14).

Directory layout::

    <dir>/meta.json        format/version, sizes, dtype, generator params
    <dir>/indptr.npy       CSR row pointer   (num_nodes + 1,)
    <dir>/indices.npy      CSR neighbor ids  (num_edges,)
    <dir>/features.dat     raw row-major     (num_nodes, feature_dim)
    <dir>/labels.npy       int64             (num_nodes,)
    <dir>/train_seeds.npy  int64 sorted seed node ids
    <dir>/communities.npy  optional int64    (num_nodes,)
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Optional, Union

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.datasets import GraphDataset
from repro.utils.random import rng_from
from repro.utils.validation import check_positive

PathLike = Union[str, pathlib.Path]

STREAMING_FORMAT_VERSION = 1
META_FILE = "meta.json"
FEATURES_FILE = "features.dat"

#: Feature rows written per chunk by the streaming writers.
DEFAULT_CHUNK_ROWS = 65_536


def save_dataset(dataset: GraphDataset, path: PathLike) -> None:
    """Serialize a :class:`GraphDataset` to one compressed ``.npz`` file."""
    payload = {
        "name": np.array(dataset.name),
        "indptr": dataset.graph.indptr,
        "indices": dataset.graph.indices,
        "features": dataset.features,
        "labels": dataset.labels,
        "train_seeds": dataset.train_seeds,
        "num_classes": np.array(dataset.num_classes),
    }
    if dataset.communities is not None:
        payload["communities"] = dataset.communities
    np.savez_compressed(path, **payload)


def load_dataset_file(path: PathLike) -> GraphDataset:
    """Load a :class:`GraphDataset` saved by :func:`save_dataset`."""
    with np.load(path, allow_pickle=False) as data:
        graph = CSRGraph(data["indptr"], data["indices"])
        return GraphDataset(
            name=str(data["name"]),
            graph=graph,
            features=data["features"],
            labels=data["labels"].astype(np.int64),
            train_seeds=data["train_seeds"].astype(np.int64),
            num_classes=int(data["num_classes"]),
            communities=(
                data["communities"].astype(np.int64)
                if "communities" in data
                else None
            ),
        )


def read_edgelist(
    path: PathLike,
    num_nodes: Optional[int] = None,
    *,
    comments: str = "#",
    symmetrize: bool = True,
) -> CSRGraph:
    """Build a :class:`CSRGraph` from a whitespace-separated edge-list file.

    Each non-comment line must start with two integer node ids (extra
    columns, e.g. weights/timestamps, are ignored) — the format SNAP
    datasets such as the real Friendster ship in.
    """
    import warnings

    with warnings.catch_warnings():
        # Empty inputs are reported explicitly below, not via the numpy
        # "input contained no data" warning.
        warnings.simplefilter("ignore", UserWarning)
        edges = np.loadtxt(
            path, comments=comments, usecols=(0, 1), dtype=np.int64, ndmin=2
        )
    if edges.size == 0:
        raise ValueError(f"no edges found in {path}")
    if num_nodes is None:
        num_nodes = int(edges.max()) + 1
    return CSRGraph.from_edges(
        edges[:, 0], edges[:, 1], num_nodes, symmetrize=symmetrize
    )


def write_edgelist(graph: CSRGraph, path: PathLike) -> None:
    """Write a graph's directed edges as a whitespace edge list."""
    src = np.repeat(np.arange(graph.num_nodes), np.diff(graph.indptr))
    np.savetxt(
        path,
        np.column_stack([graph.indices, src]),  # u -> v as "u v"
        fmt="%d",
        header="source target",
        comments="# ",
    )


# ---------------------------------------------------------------------- #
# streaming dataset directories (out-of-core features)
# ---------------------------------------------------------------------- #
def is_dataset_dir(path: PathLike) -> bool:
    """Whether ``path`` is a streaming dataset directory."""
    return (pathlib.Path(path) / META_FILE).is_file()


def _write_meta(out: pathlib.Path, meta: Dict) -> None:
    with open(out / META_FILE, "w") as fh:
        json.dump(meta, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _write_graph_and_labels(
    out: pathlib.Path,
    graph: CSRGraph,
    labels: np.ndarray,
    train_seeds: np.ndarray,
    communities: Optional[np.ndarray],
) -> None:
    np.save(out / "indptr.npy", graph.indptr)
    np.save(out / "indices.npy", graph.indices)
    np.save(out / "labels.npy", np.asarray(labels, dtype=np.int64))
    np.save(out / "train_seeds.npy", np.asarray(train_seeds, dtype=np.int64))
    if communities is not None:
        np.save(out / "communities.npy", np.asarray(communities, dtype=np.int64))


def write_dataset_dir(
    dataset: GraphDataset,
    out_dir: PathLike,
    *,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
) -> pathlib.Path:
    """Persist an existing :class:`GraphDataset` to the streaming layout.

    Features are copied into ``features.dat`` ``chunk_rows`` rows at a time
    — the produced file holds the exact same bytes as the in-RAM matrix, so
    a store opened from the directory reads bit-identical rows (pinned by
    ``tests/featurestore/test_disk_tier.py``).
    """
    check_positive("chunk_rows", chunk_rows)
    out = pathlib.Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    n = dataset.num_nodes
    feats = dataset.features
    mm = np.memmap(
        out / FEATURES_FILE, dtype=feats.dtype, mode="w+", shape=feats.shape
    )
    for start in range(0, n, int(chunk_rows)):
        stop = min(start + int(chunk_rows), n)
        mm[start:stop] = feats[start:stop]
    mm.flush()
    del mm
    _write_graph_and_labels(
        out, dataset.graph, dataset.labels, dataset.train_seeds, dataset.communities
    )
    _write_meta(
        out,
        {
            "format": "repro-streaming-dataset",
            "version": STREAMING_FORMAT_VERSION,
            "name": dataset.name,
            "num_nodes": int(n),
            "num_edges": int(dataset.graph.num_edges),
            "feature_dim": int(dataset.feature_dim),
            "feature_dtype": str(feats.dtype),
            "num_classes": int(dataset.num_classes),
        },
    )
    return out


def write_streaming_dataset(
    out_dir: PathLike,
    *,
    num_nodes: int,
    avg_degree: float = 8.0,
    feature_dim: int = 128,
    num_classes: int = 16,
    kind: str = "power_law",
    seed: int = 0,
    train_fraction: float = 0.01,
    exponent: float = 2.0,
    feature_noise: float = 1.0,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    chunk_edges: Optional[int] = None,
) -> pathlib.Path:
    """Generate a power-law/RMAT graph straight to the streaming layout.

    The graph comes from the chunked generators (bounded peak memory); the
    feature matrix is written ``chunk_rows`` rows at a time as noisy class
    centroids — at no point is the full ``(num_nodes, feature_dim)`` array
    resident.  Labels are uniform classes; the signal lives in the features,
    like the in-RAM analogs.  Deterministic under ``(seed, chunk sizes)``.
    """
    from repro.graph.generators import (
        DEFAULT_CHUNK_EDGES,
        power_law_graph,
        rmat_graph,
    )

    check_positive("num_nodes", num_nodes)
    check_positive("feature_dim", feature_dim)
    check_positive("num_classes", num_classes)
    check_positive("chunk_rows", chunk_rows)
    if chunk_edges is None:
        chunk_edges = DEFAULT_CHUNK_EDGES
    if kind == "power_law":
        graph = power_law_graph(
            num_nodes, avg_degree, exponent, seed=seed, chunk_edges=chunk_edges
        )
    elif kind == "rmat":
        graph = rmat_graph(
            num_nodes,
            int(round(num_nodes * avg_degree / 2)),
            seed=seed,
            chunk_edges=chunk_edges,
        )
    else:
        raise ValueError(f"unknown generator kind {kind!r}; use power_law|rmat")

    out = pathlib.Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    n = int(num_nodes)
    rng = rng_from(seed, 0xD15C)
    labels = rng.integers(0, num_classes, size=n).astype(np.int64)
    centers = rng.normal(size=(num_classes, feature_dim))
    mm = np.memmap(
        out / FEATURES_FILE, dtype=np.float64, mode="w+", shape=(n, feature_dim)
    )
    for start in range(0, n, int(chunk_rows)):
        stop = min(start + int(chunk_rows), n)
        noise = rng.normal(size=(stop - start, feature_dim))
        mm[start:stop] = centers[labels[start:stop]] + feature_noise * noise
    mm.flush()
    del mm

    n_train = max(int(round(train_fraction * n)), 1)
    train_seeds = rng.choice(n, size=n_train, replace=False).astype(np.int64)
    train_seeds.sort()
    _write_graph_and_labels(out, graph, labels, train_seeds, None)
    _write_meta(
        out,
        {
            "format": "repro-streaming-dataset",
            "version": STREAMING_FORMAT_VERSION,
            "name": f"{kind}-{n}",
            "num_nodes": n,
            "num_edges": int(graph.num_edges),
            "feature_dim": int(feature_dim),
            "feature_dtype": "float64",
            "num_classes": int(num_classes),
            "kind": kind,
            "seed": int(seed),
            "avg_degree": float(avg_degree),
            "exponent": float(exponent),
            "train_fraction": float(train_fraction),
        },
    )
    return out


def open_streaming_dataset(
    path: PathLike, *, mmap_graph: bool = False
) -> GraphDataset:
    """Open a streaming dataset directory with memory-mapped features.

    ``features`` is a read-only ``np.memmap`` — the feature store detects it
    and activates the disk tier; rows are only paged in as sampled batches
    touch them.  ``mmap_graph=True`` additionally memory-maps the CSR
    ``indices`` array (useful above ~10M edges).
    """
    root = pathlib.Path(path)
    if not is_dataset_dir(root):
        raise FileNotFoundError(f"{root} is not a dataset directory (no {META_FILE})")
    with open(root / META_FILE) as fh:
        meta = json.load(fh)
    if meta.get("format") != "repro-streaming-dataset":
        raise ValueError(f"{root}: unrecognized dataset format {meta.get('format')!r}")
    if int(meta.get("version", 0)) > STREAMING_FORMAT_VERSION:
        raise ValueError(
            f"{root}: dataset version {meta['version']} is newer than "
            f"supported version {STREAMING_FORMAT_VERSION}"
        )
    indptr = np.load(root / "indptr.npy")
    indices = np.load(root / "indices.npy", mmap_mode="r" if mmap_graph else None)
    graph = CSRGraph(indptr, indices)
    n = int(meta["num_nodes"])
    dim = int(meta["feature_dim"])
    features = np.memmap(
        root / FEATURES_FILE,
        dtype=np.dtype(meta["feature_dtype"]),
        mode="r",
        shape=(n, dim),
    )
    comm_path = root / "communities.npy"
    return GraphDataset(
        name=str(meta.get("name", root.name)),
        graph=graph,
        features=features,
        labels=np.load(root / "labels.npy").astype(np.int64),
        train_seeds=np.load(root / "train_seeds.npy").astype(np.int64),
        num_classes=int(meta["num_classes"]),
        communities=(
            np.load(comm_path).astype(np.int64) if comm_path.is_file() else None
        ),
    )


def save_partition(parts: np.ndarray, path: PathLike) -> None:
    """Persist a node->device partition array."""
    np.savez_compressed(path, parts=np.asarray(parts, dtype=np.int64))


def load_partition(path: PathLike) -> np.ndarray:
    """Load a partition saved by :func:`save_partition`."""
    with np.load(path, allow_pickle=False) as data:
        return data["parts"].astype(np.int64)
