"""Scale-model analogs of the paper's evaluation graphs.

The paper trains on three public graphs (Table 2):

=============  ======== ======= ============ =================================
graph          vertices edges   feature dim  access skewness (paper Table 3)
=============  ======== ======= ============ =================================
Papers (PS)    111M     3.2B    128          extreme — top 1% of nodes take
                                             50.1% of all feature accesses
Friendster(FS) 66M      3.6B    256          scattered — top 1% take 17.7%;
                                             the 20-50% band still takes 13.5%
IGB260M (IM)   269M     3.9B    128          intermediate — top 1% take 31.1%
=============  ======== ======= ============ =================================

Hosting these is impossible here (52-128 GB of features), so each analog is
a ~40-60k-node community-structured power-law graph whose *degree-skew knob*
(power-law exponent, hub cap) is tuned so that fanout-sampling access
frequencies land in the same skewness band.  ``benchmarks/bench_table3_skewness.py``
regenerates paper Table 3 against these analogs as a calibration check.

Every analog also carries learnable structure: labels follow planted
communities and features are noisy class centroids, so the accuracy sanity
experiments (paper Fig. 6/7) have real signal to fit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.generators import community_graph
from repro.utils.random import rng_from


@dataclass
class GraphDataset:
    """A graph plus features, labels, and the training seed set.

    Attributes
    ----------
    name:
        Short name ("ps", "fs", "im", or custom).
    graph:
        Topology in CSR (in-neighbor) layout.
    features:
        ``(num_nodes, feature_dim)`` float64 input node features.
    labels:
        ``(num_nodes,)`` int64 class labels.
    train_seeds:
        Node ids used as minibatch seeds during training.
    num_classes:
        Number of label classes.
    communities:
        Planted community assignment (also the label source); exposed so
        tests can check partitioner behaviour against ground truth.
    """

    name: str
    graph: CSRGraph
    features: np.ndarray
    labels: np.ndarray
    train_seeds: np.ndarray
    num_classes: int
    communities: Optional[np.ndarray] = None

    def __post_init__(self):
        n = self.graph.num_nodes
        if self.features.shape[0] != n:
            raise ValueError(
                f"features rows {self.features.shape[0]} != num_nodes {n}"
            )
        if self.labels.shape != (n,):
            raise ValueError(f"labels shape {self.labels.shape} != ({n},)")

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def feature_dim(self) -> int:
        return int(self.features.shape[1])

    @property
    def feature_bytes(self) -> int:
        """Total bytes of the feature matrix (drives cache sizing)."""
        return int(self.features.nbytes)

    def with_features(self, features: np.ndarray) -> "GraphDataset":
        """Return a copy with a different feature matrix (input-dim sweeps)."""
        return GraphDataset(
            name=self.name,
            graph=self.graph,
            features=features,
            labels=self.labels,
            train_seeds=self.train_seeds,
            num_classes=self.num_classes,
            communities=self.communities,
        )


def _make_analog(
    name: str,
    n: int,
    avg_degree: float,
    exponent: float,
    intra_prob: float,
    feature_dim: int,
    num_classes: int,
    seed: int,
    max_degree: Optional[int],
    train_fraction: float,
    feature_noise: float,
) -> GraphDataset:
    graph, comm = community_graph(
        n,
        avg_degree,
        num_communities=num_classes,
        intra_prob=intra_prob,
        exponent=exponent,
        seed=seed,
        max_degree=max_degree,
        return_communities=True,
    )
    rng = rng_from(seed, 0xFEA7)
    centers = rng.normal(size=(num_classes, feature_dim))
    features = centers[comm] + feature_noise * rng.normal(size=(n, feature_dim))
    labels = comm.astype(np.int64)
    n_train = max(int(round(train_fraction * n)), 1)
    train_seeds = rng.choice(n, size=n_train, replace=False).astype(np.int64)
    train_seeds.sort()
    return GraphDataset(
        name=name,
        graph=graph,
        features=features,
        labels=labels,
        train_seeds=train_seeds,
        num_classes=num_classes,
        communities=comm,
    )


def ps_like(
    n: int = 45_000,
    feature_dim: int = 128,
    seed: int = 1,
    *,
    train_fraction: float = 0.10,
) -> GraphDataset:
    """Papers100M analog: extreme access skew (hub-dominated citations).

    Low power-law exponent and a generous hub cap concentrate sampling
    accesses on few nodes (paper: top 1% of nodes receive ~50% of accesses,
    the bottom half receives ~0%).
    """
    return _make_analog(
        name="ps",
        n=n,
        avg_degree=120.0,
        exponent=1.45,
        intra_prob=0.90,
        feature_dim=feature_dim,
        num_classes=16,
        seed=seed,
        max_degree=int(n * 0.15),
        train_fraction=train_fraction,
        feature_noise=1.0,
    )


def fs_like(
    n: int = 40_000,
    feature_dim: int = 256,
    seed: int = 2,
    *,
    train_fraction: float = 0.10,
) -> GraphDataset:
    """Friendster analog: scattered accesses (social graph, flat degrees).

    High exponent plus a tight hub cap spread sampling accesses across most
    of the graph (paper: top 1% take only ~18%, the 20-50% band still takes
    ~14%), which makes GPU caches ineffective for GDP and favors SNP.
    """
    return _make_analog(
        name="fs",
        n=n,
        avg_degree=60.0,
        exponent=1.70,
        intra_prob=0.88,
        feature_dim=feature_dim,
        num_classes=16,
        seed=seed,
        max_degree=int(n * 0.03),
        train_fraction=train_fraction,
        feature_noise=1.0,
    )


def im_like(
    n: int = 60_000,
    feature_dim: int = 128,
    seed: int = 3,
    *,
    train_fraction: float = 0.10,
) -> GraphDataset:
    """IGB260M analog: intermediate access skew.

    Paper Table 3: top 1% take ~31% of accesses, bottom half ~0%.
    """
    return _make_analog(
        name="im",
        n=n,
        avg_degree=45.0,
        exponent=1.60,
        intra_prob=0.90,
        feature_dim=feature_dim,
        num_classes=16,
        seed=seed,
        max_degree=int(n * 0.05),
        train_fraction=train_fraction,
        feature_noise=1.0,
    )


_REGISTRY: Dict[str, Callable[..., GraphDataset]] = {
    "ps": ps_like,
    "fs": fs_like,
    "im": im_like,
}


def load_dataset(name: str, **kwargs) -> GraphDataset:
    """Load a dataset analog by its paper abbreviation ("ps", "fs", "im")."""
    try:
        factory = _REGISTRY[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory(**kwargs)


def small_dataset(
    n: int = 2_000,
    feature_dim: int = 16,
    num_classes: int = 4,
    seed: int = 7,
    avg_degree: float = 8.0,
) -> GraphDataset:
    """A tiny dataset for unit tests and the quickstart example."""
    return _make_analog(
        name="small",
        n=n,
        avg_degree=avg_degree,
        exponent=2.2,
        intra_prob=0.85,
        feature_dim=feature_dim,
        num_classes=num_classes,
        seed=seed,
        max_degree=None,
        train_fraction=0.2,
        feature_noise=0.8,
    )
