"""Synthetic graph generators.

Three families cover the structure the paper's evaluation depends on:

* :func:`power_law_graph` — configuration-model graph with a discrete
  power-law degree sequence.  The exponent controls hub concentration and
  therefore the node-access skewness under fanout sampling (paper Table 3).
* :func:`rmat_graph` — recursive-matrix (Kronecker) generator; produces
  skewed, self-similar graphs like web/citation networks.
* :func:`community_graph` — power-law degrees plus planted communities with
  a tunable intra-community edge probability.  Communities give the
  METIS-like partitioner real locality to find (paper Fig. 11 contrasts good
  vs random partitions) and provide learnable class structure for the
  accuracy sanity checks (paper Fig. 6/7).

All generators are fully vectorized and deterministic under a seed.

For multi-million-edge graphs the generators draw edges in fixed-size
chunks with incremental dedup (an accumulating sorted set of canonical
undirected edge keys) instead of materializing one giant stub/random
array per draw — peak intermediate memory is ``O(chunk_edges + unique
edges)`` instead of ``O(scale * num_edges)``.  Graphs that fit in a
single chunk take exactly the historical code path, so every existing
seed reproduces bit-for-bit.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.utils.random import rng_from
from repro.utils.validation import check_positive, check_probability

#: Edges generated per chunk by the chunked generator paths.  Everything
#: at or below this size uses the historical single-shot path.
DEFAULT_CHUNK_EDGES = 1 << 20


def _canonical_edge_keys(src: np.ndarray, dst: np.ndarray, n: int) -> np.ndarray:
    """Pack undirected edges into sortable int64 keys ``min * n + max``."""
    lo = np.minimum(src, dst)
    hi = np.maximum(src, dst)
    return lo * np.int64(n) + hi


class _EdgeAccumulator:
    """Incremental undirected-edge dedup in bounded memory.

    Each chunk is deduplicated locally (``np.unique``) then merged into the
    accumulated sorted key set (``np.union1d``), so peak memory is one chunk
    plus the running unique-edge set — never the raw multi-set of all draws.
    """

    def __init__(self, n: int):
        if n > 3_000_000_000:
            raise ValueError(f"edge keys overflow int64 for n = {n}")
        self.n = int(n)
        self.keys = np.empty(0, dtype=np.int64)

    def add(self, src: np.ndarray, dst: np.ndarray) -> None:
        fresh = np.unique(_canonical_edge_keys(src, dst, self.n))
        self.keys = fresh if self.keys.size == 0 else np.union1d(self.keys, fresh)

    def edges(self):
        """The deduplicated edge list as ``(src, dst)`` with ``src <= dst``."""
        return self.keys // self.n, self.keys % self.n


def _power_law_degrees(
    n: int, avg_degree: float, exponent: float, rng: np.random.Generator, max_degree: Optional[int] = None
) -> np.ndarray:
    """Draw a degree sequence ``deg ~ k^-exponent`` scaled to ``avg_degree``.

    Sampled by inverse-CDF over a continuous Pareto then discretized; the
    sequence is rescaled multiplicatively so its mean matches ``avg_degree``.
    """
    check_positive("n", n)
    check_positive("avg_degree", avg_degree)
    if exponent <= 1.0:
        raise ValueError(f"power-law exponent must be > 1, got {exponent}")
    if max_degree is None:
        max_degree = max(int(np.sqrt(n) * 4), 64)
    u = rng.random(n)
    # Pareto with shape (exponent - 1): x = (1 - u)^(-1/(exponent-1))
    raw = (1.0 - u) ** (-1.0 / (exponent - 1.0))
    deg = raw * (avg_degree / raw.mean())
    # Cap *after* scaling (the cap is a bound on realized degrees), then
    # re-scale once so the mean stays near the target despite clipping.
    deg = np.minimum(deg, max_degree)
    deg *= avg_degree / deg.mean()
    deg = np.minimum(deg, max_degree)
    deg = np.maximum(np.rint(deg), 1).astype(np.int64)
    deg = np.minimum(deg, n - 1)
    return deg


def power_law_graph(
    n: int,
    avg_degree: float,
    exponent: float,
    seed: int = 0,
    *,
    max_degree: Optional[int] = None,
    chunk_edges: int = DEFAULT_CHUNK_EDGES,
) -> CSRGraph:
    """Configuration-model graph with power-law degrees (undirected).

    Stubs are paired by a random permutation; multi-edges and self-loops are
    dropped, so realized degrees are slightly below nominal for hubs.

    Above ``chunk_edges`` edges the full stub shuffle (O(sum of degrees)
    peak memory, twice) is replaced by chunked degree-proportional partner
    sampling with incremental dedup: same degree sequence and the same
    power-law edge-endpoint distribution, bounded peak memory.  At or below
    the threshold the historical exact path runs, so existing seeds
    reproduce bit-for-bit.
    """
    check_positive("chunk_edges", chunk_edges)
    rng = rng_from(seed, 0xC0DE)
    deg = _power_law_degrees(n, avg_degree, exponent, rng, max_degree)
    if deg.sum() % 2 == 1:
        deg[int(rng.integers(n))] += 1
    total_stubs = int(deg.sum())
    if total_stubs <= 2 * chunk_edges:
        stubs = np.repeat(np.arange(n, dtype=np.int64), deg)
        rng.shuffle(stubs)
        half = stubs.shape[0] // 2
        src, dst = stubs[:half], stubs[half : 2 * half]
        return CSRGraph.from_edges(src, dst, n, symmetrize=True, dedupe=True)

    # Chunked path: walk the stub sequence (node i owns stubs
    # [cdeg[i], cdeg[i+1])) in fixed-size windows and draw each stub's
    # partner degree-proportionally — the configuration model's endpoint
    # distribution without ever materializing the full stub array.
    half = total_stubs // 2
    cdeg = np.concatenate(([0], np.cumsum(deg)))
    p = deg.astype(np.float64) / float(deg.sum())
    acc = _EdgeAccumulator(n)
    start = 0
    while start < half:
        m = int(min(chunk_edges, half - start))
        src = np.searchsorted(cdeg, np.arange(start, start + m), side="right") - 1
        dst = rng.choice(n, size=m, p=p)
        acc.add(src.astype(np.int64), dst.astype(np.int64))
        start += m
    src, dst = acc.edges()
    return CSRGraph.from_edges(src, dst, n, symmetrize=True, dedupe=True)


def rmat_graph(
    n: int,
    num_edges: int,
    seed: int = 0,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    chunk_edges: int = DEFAULT_CHUNK_EDGES,
) -> CSRGraph:
    """R-MAT (Chakrabarti et al., 2004) graph, vectorized per chunk.

    ``n`` is rounded up to a power of two internally; nodes beyond ``n - 1``
    are folded back with a modulo, which preserves the skew structure.

    Edges are drawn in chunks of at most ``chunk_edges`` (per-bit random
    draws are sized to the chunk, not to ``num_edges``) and merged through
    the incremental dedup accumulator, bounding peak memory for
    multi-million-edge graphs.  A graph that fits in one chunk consumes
    the rng in exactly the historical order, so existing seeds reproduce
    bit-for-bit.
    """
    check_positive("num_edges", num_edges)
    check_positive("chunk_edges", chunk_edges)
    d = 1.0 - a - b - c
    if d < 0:
        raise ValueError(f"R-MAT probabilities exceed 1: a+b+c = {a + b + c}")
    rng = rng_from(seed, 0x12A7)
    scale = int(np.ceil(np.log2(max(n, 2))))
    p_right = b + d  # probability the src bit is 1
    acc = _EdgeAccumulator(n)
    single_chunk = num_edges <= chunk_edges
    produced = 0
    while produced < num_edges:
        m = int(min(chunk_edges, num_edges - produced))
        src = np.zeros(m, dtype=np.int64)
        dst = np.zeros(m, dtype=np.int64)
        for bit in range(scale):
            u = rng.random(m)
            v = rng.random(m)
            src_bit = (u >= a + c).astype(np.int64)
            # Conditional distribution of dst bit given src bit.
            thresh = np.where(
                src_bit == 1, b / max(p_right, 1e-12), a / max(a + c, 1e-12)
            )
            dst_bit = (v >= thresh).astype(np.int64)
            src = (src << 1) | src_bit
            dst = (dst << 1) | dst_bit
        src %= n
        dst %= n
        if single_chunk:
            return CSRGraph.from_edges(src, dst, n, symmetrize=True, dedupe=True)
        acc.add(src, dst)
        produced += m
    src, dst = acc.edges()
    return CSRGraph.from_edges(src, dst, n, symmetrize=True, dedupe=True)


def community_graph(
    n: int,
    avg_degree: float,
    num_communities: int,
    intra_prob: float,
    exponent: float = 2.2,
    seed: int = 0,
    *,
    max_degree: Optional[int] = None,
    return_communities: bool = False,
):
    """Power-law graph with planted communities.

    Each node draws a power-law degree; each edge endpoint then picks its
    partner *within the same community* with probability ``intra_prob`` and
    globally otherwise, in both cases proportionally to partner degree
    (preferential attachment flavor).

    Parameters
    ----------
    intra_prob:
        Fraction of edges that stay inside a community.  High values
        (0.8-0.95) give the partitioner a low edge-cut to find; lowering it
        emulates partition-hostile graphs.
    return_communities:
        Also return the ``(n,)`` community assignment (used for labels).
    """
    check_probability("intra_prob", intra_prob)
    check_positive("num_communities", num_communities)
    rng = rng_from(seed, 0xC033)
    deg = _power_law_degrees(n, avg_degree, exponent, rng, max_degree)
    comm = rng.integers(0, num_communities, size=n)
    order = np.argsort(comm, kind="stable")

    total_stubs = int(deg.sum())
    src = np.repeat(np.arange(n, dtype=np.int64), deg)
    dst = np.empty(total_stubs, dtype=np.int64)
    weights = deg.astype(np.float64)

    intra_mask = rng.random(total_stubs) < intra_prob

    # Global partners for the inter-community stubs: degree-proportional.
    n_inter = int((~intra_mask).sum())
    global_p = weights / weights.sum()
    dst[~intra_mask] = rng.choice(n, size=n_inter, p=global_p)

    # Intra-community partners: degree-proportional within each community.
    sorted_nodes = order  # nodes grouped by community
    comm_sorted = comm[order]
    boundaries = np.searchsorted(comm_sorted, np.arange(num_communities + 1))
    intra_idx = np.nonzero(intra_mask)[0]
    stub_comm = comm[src[intra_idx]]
    for cid in range(num_communities):
        members = sorted_nodes[boundaries[cid] : boundaries[cid + 1]]
        stubs_here = intra_idx[stub_comm == cid]
        if stubs_here.size == 0:
            continue
        if members.size == 0:
            dst[stubs_here] = rng.choice(n, size=stubs_here.size, p=global_p)
            continue
        w = weights[members]
        dst[stubs_here] = members[
            rng.choice(members.size, size=stubs_here.size, p=w / w.sum())
        ]

    graph = CSRGraph.from_edges(src, dst, n, symmetrize=True, dedupe=True)
    if return_communities:
        return graph, comm
    return graph
