"""Graph partitioning: a multilevel edge-cut partitioner plus baselines.

The paper uses METIS to assign graph nodes to GPUs for the SNP and DNP
strategies (and shows in Fig. 11 how badly they degrade under random
partitioning).  METIS itself is not available offline, so
:func:`metis_like_partition` implements the standard multilevel scheme METIS
popularized (Karypis & Kumar, 1998):

1. **Coarsening** — repeated heavy-edge matching collapses matched node
   pairs until the graph is small;
2. **Initial partitioning** — greedy balanced region growing on the
   coarsest graph, seeded from high-degree nodes;
3. **Uncoarsening + refinement** — projected back level by level with
   boundary Kernighan-Lin-style moves that reduce the edge cut while
   keeping parts within a balance tolerance.

On the community-structured datasets in this repo it recovers partitions
with edge-cut fractions far below random, which is exactly the contrast
paper Fig. 11 exercises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.graph.csr import CSRGraph
from repro.utils.random import rng_from
from repro.utils.validation import check_positive


def _normalize_weights(
    weights: Optional[Sequence[float]], num_parts: int
) -> Optional[np.ndarray]:
    """Validate and normalize per-part weights to targets summing to 1.

    ``None`` means equal-sized parts and selects the historical (bitwise
    unchanged) code paths.
    """
    if weights is None:
        return None
    targets = np.asarray(weights, dtype=np.float64)
    if targets.shape != (num_parts,):
        raise ValueError(
            f"weights must have one entry per part "
            f"({targets.shape} != ({num_parts},))"
        )
    if not np.all(targets > 0):
        raise ValueError("partition weights must be strictly positive")
    return targets / targets.sum()


def random_partition(
    num_nodes: int,
    num_parts: int,
    seed: int = 0,
    *,
    weights: Optional[Sequence[float]] = None,
) -> np.ndarray:
    """Random node-to-part assignment (paper Fig. 11 baseline).

    With ``weights``, parts are drawn proportionally instead of uniformly.
    """
    check_positive("num_parts", num_parts)
    rng = rng_from(seed, 0xBAD)
    targets = _normalize_weights(weights, num_parts)
    if targets is None:
        return rng.integers(0, num_parts, size=num_nodes).astype(np.int64)
    return rng.choice(num_parts, size=num_nodes, p=targets).astype(np.int64)


def hash_partition(num_nodes: int, num_parts: int) -> np.ndarray:
    """Deterministic modulo assignment (round-robin by node id)."""
    check_positive("num_parts", num_parts)
    return (np.arange(num_nodes, dtype=np.int64) % num_parts)


# --------------------------------------------------------------------- #
# multilevel partitioner internals
# --------------------------------------------------------------------- #
@dataclass
class _Level:
    """One level of the coarsening hierarchy."""

    indptr: np.ndarray
    indices: np.ndarray
    edge_weights: np.ndarray
    node_weights: np.ndarray
    # Mapping from the *finer* level's nodes to this level's nodes.
    fine_to_coarse: Optional[np.ndarray]

    @property
    def num_nodes(self) -> int:
        return self.indptr.shape[0] - 1


def _heavy_edge_matching(
    level: _Level, rng: np.random.Generator, rounds: int = 5
) -> np.ndarray:
    """Vectorized heavy-edge matching via repeated mutual-best pairing.

    Each round, every unmatched node nominates its heaviest unmatched
    neighbor (random tie-breaking); mutually-nominating pairs are matched.
    This is the standard parallel approximation of sequential HEM and
    typically matches >80% of nodes in a few rounds.  Returns
    ``fine_to_coarse``: matched pairs share a coarse node id.
    """
    n = level.num_nodes
    indptr, indices, ew = level.indptr, level.indices, level.edge_weights
    match = np.arange(n, dtype=np.int64)  # self-matched by default
    unmatched = np.ones(n, dtype=bool)
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    noise = rng.random(ew.shape[0]) * 1e-6
    for _ in range(rounds):
        valid = unmatched[src] & unmatched[indices] & (src != indices)
        if not valid.any():
            break
        w = np.where(valid, ew + noise, -np.inf)
        # Per-row argmax: sort by (row, weight); the last entry per row wins.
        order = np.lexsort((w, src))
        sorted_src = src[order]
        row_last = np.nonzero(
            np.r_[sorted_src[1:] != sorted_src[:-1], True]
        )[0]
        rows = sorted_src[row_last]
        best_edge = order[row_last]
        has_valid = np.isfinite(w[best_edge])
        rows, best_edge = rows[has_valid], best_edge[has_valid]
        best = np.full(n, -1, dtype=np.int64)
        best[rows] = indices[best_edge]
        # Mutual nominations become matches.
        cand = np.nonzero(best >= 0)[0]
        mutual = cand[best[best[cand]] == cand]
        pairs = mutual[mutual < best[mutual]]
        if pairs.size == 0:
            break
        partners = best[pairs]
        match[pairs] = partners
        match[partners] = pairs
        unmatched[pairs] = False
        unmatched[partners] = False
    owner = np.minimum(np.arange(n), match)
    _, fine_to_coarse = np.unique(owner, return_inverse=True)
    return fine_to_coarse.astype(np.int64)


def _coarsen(level: _Level, fine_to_coarse: np.ndarray) -> _Level:
    """Build the coarse graph induced by a matching."""
    n_coarse = int(fine_to_coarse.max()) + 1
    src = np.repeat(np.arange(level.num_nodes), np.diff(level.indptr))
    dst = level.indices
    cu, cv = fine_to_coarse[src], fine_to_coarse[dst]
    keep = cu != cv
    cu, cv, w = cu[keep], cv[keep], level.edge_weights[keep]
    # Merge parallel edges, summing weights.
    key = cu * np.int64(n_coarse) + cv
    order = np.argsort(key, kind="stable")
    key, cu, cv, w = key[order], cu[order], cv[order], w[order]
    if key.size:
        boundary = np.empty(key.size, dtype=bool)
        boundary[0] = True
        boundary[1:] = key[1:] != key[:-1]
        group = np.cumsum(boundary) - 1
        merged_w = np.bincount(group, weights=w)
        cu, cv = cu[boundary], cv[boundary]
    else:
        merged_w = w
    counts = np.bincount(cu, minlength=n_coarse)
    indptr = np.zeros(n_coarse + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    node_weights = np.bincount(fine_to_coarse, weights=level.node_weights, minlength=n_coarse)
    return _Level(
        indptr=indptr,
        indices=cv.astype(np.int64),
        edge_weights=merged_w.astype(np.float64),
        node_weights=node_weights,
        fine_to_coarse=fine_to_coarse,
    )


def _initial_partition(
    level: _Level,
    num_parts: int,
    rng: np.random.Generator,
    targets: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Greedy balanced region growing on the coarsest graph.

    ``targets`` (normalized per-part weight fractions) makes capacities and
    the fill order proportional to device speed; ``None`` keeps the
    historical equal-share behavior bit-for-bit.
    """
    n = level.num_nodes
    total_w = level.node_weights.sum()
    if targets is None:
        # Scalar share broadcast per part: identical values to the old
        # scalar cap, so the unweighted path is bitwise unchanged.
        cap = np.full(num_parts, total_w / num_parts * 1.05)
        fill = lambda: loads  # noqa: E731 — ordering key for part growth
    else:
        goal = total_w * targets
        cap = goal * 1.05
        fill = lambda: loads / goal  # noqa: E731
    parts = np.full(n, -1, dtype=np.int64)
    loads = np.zeros(num_parts)
    degree_order = np.argsort(-np.diff(level.indptr))
    frontier_sets: List[List[int]] = [[] for _ in range(num_parts)]
    seeds_iter = iter(degree_order)
    for p in range(num_parts):
        for s in seeds_iter:
            if parts[s] == -1:
                parts[s] = p
                loads[p] += level.node_weights[s]
                frontier_sets[p].extend(
                    level.indices[level.indptr[s] : level.indptr[s + 1]].tolist()
                )
                break
    # Round-robin BFS growth, least-filled part first.
    active = True
    while active:
        active = False
        for p in np.argsort(fill()):
            if loads[p] >= cap[p]:
                continue
            frontier = frontier_sets[p]
            grabbed = False
            while frontier:
                v = frontier.pop()
                if parts[v] == -1:
                    parts[v] = p
                    loads[p] += level.node_weights[v]
                    frontier_sets[p].extend(
                        level.indices[level.indptr[v] : level.indptr[v + 1]].tolist()
                    )
                    grabbed = True
                    break
            if grabbed:
                active = True
    # Any disconnected leftovers go to the least-filled parts.
    for v in np.nonzero(parts == -1)[0]:
        p = int(np.argmin(fill()))
        parts[v] = p
        loads[p] += level.node_weights[v]
    return parts


def _refine(
    level: _Level,
    parts: np.ndarray,
    num_parts: int,
    passes: int,
    balance_tol: float,
    targets: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Boundary refinement: greedily move nodes to their best-connected part.

    A node moves when its heaviest-adjacency part differs from its current
    part and the move keeps both parts within the balance tolerance — a
    tolerance measured relative to each part's *target* share when
    ``targets`` is given (weighted capacities), and to the even share
    otherwise.  This is the lightweight FM-style refinement used at each
    uncoarsening level.
    """
    n = level.num_nodes
    indptr, indices, ew = level.indptr, level.indices, level.edge_weights
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    loads = np.bincount(parts, weights=level.node_weights, minlength=num_parts)
    total_w = level.node_weights.sum()
    if targets is None:
        cap = np.full(num_parts, total_w / num_parts * (1.0 + balance_tol))
        floor = np.full(num_parts, total_w / num_parts * (1.0 - balance_tol))
    else:
        goal = total_w * targets
        cap = goal * (1.0 + balance_tol)
        floor = goal * (1.0 - balance_tol)
    for _ in range(passes):
        # Adjacency weight of every node to every part, in one bincount.
        key = src * np.int64(num_parts) + parts[indices]
        conn = np.bincount(key, weights=ew, minlength=n * num_parts).reshape(
            n, num_parts
        )
        best = np.argmax(conn, axis=1)
        cur_conn = conn[np.arange(n), parts]
        gain = conn[np.arange(n), best] - cur_conn
        cand = np.nonzero((best != parts) & (gain > 0))[0]
        if cand.size == 0:
            break
        # Apply moves greedily by descending gain, maintaining balance.
        cand = cand[np.argsort(-gain[cand])]
        moved = 0
        for v in cand:
            b, c = int(best[v]), int(parts[v])
            wv = level.node_weights[v]
            if loads[b] + wv > cap[b] or loads[c] - wv < floor[c]:
                continue
            parts[v] = b
            loads[b] += wv
            loads[c] -= wv
            moved += 1
        if moved == 0:
            break
    return parts


def metis_like_partition(
    graph: CSRGraph,
    num_parts: int,
    seed: int = 0,
    *,
    coarsen_until: int = 4_000,
    max_levels: int = 12,
    refine_passes: int = 4,
    balance_tol: float = 0.08,
    weights: Optional[Sequence[float]] = None,
) -> np.ndarray:
    """Multilevel k-way edge-cut partitioning (METIS stand-in).

    Parameters
    ----------
    graph:
        Input topology (treated as undirected; the CSR should be symmetric).
    num_parts:
        Number of parts (one per simulated GPU for SNP/DNP).
    coarsen_until:
        Stop coarsening when the graph has at most this many nodes.
    balance_tol:
        Allowed relative deviation of part weights from their target share.
    weights:
        Optional per-part capacity weights (e.g. device speeds): part
        ``p`` targets ``weights[p] / sum(weights)`` of the node weight, so
        a 2x-faster device owns ~2x the nodes.  ``None`` keeps the
        historical equal-sized behavior unchanged.

    Returns
    -------
    ``(num_nodes,)`` int64 part assignment.
    """
    check_positive("num_parts", num_parts)
    targets = _normalize_weights(weights, num_parts)
    if num_parts == 1:
        return np.zeros(graph.num_nodes, dtype=np.int64)
    rng = rng_from(seed, 0x4E715)

    base = _Level(
        indptr=graph.indptr,
        indices=graph.indices,
        edge_weights=np.ones(graph.num_edges, dtype=np.float64),
        node_weights=np.ones(graph.num_nodes, dtype=np.float64),
        fine_to_coarse=None,
    )
    levels = [base]
    while levels[-1].num_nodes > coarsen_until and len(levels) < max_levels:
        matching = _heavy_edge_matching(levels[-1], rng)
        coarse = _coarsen(levels[-1], matching)
        if coarse.num_nodes >= levels[-1].num_nodes * 0.95:
            break  # matching stalled; stop coarsening
        levels.append(coarse)

    parts = _initial_partition(levels[-1], num_parts, rng, targets)
    parts = _refine(
        levels[-1], parts, num_parts, refine_passes, balance_tol, targets
    )

    # Uncoarsen: project and refine at each finer level.
    for level_idx in range(len(levels) - 1, 0, -1):
        mapping = levels[level_idx].fine_to_coarse
        parts = parts[mapping]
        parts = _refine(
            levels[level_idx - 1], parts, num_parts, refine_passes,
            balance_tol, targets,
        )
    return parts.astype(np.int64)


# --------------------------------------------------------------------- #
# coarsen-once streaming partitioner (out-of-core scale)
# --------------------------------------------------------------------- #
def _cluster_label_propagation(
    graph: CSRGraph,
    num_clusters: int,
    rounds: int,
    chunk_nodes: int,
    slack: float,
) -> np.ndarray:
    """Capacity-bounded label propagation into ``num_clusters`` clusters.

    Nodes start in contiguous id blocks; each round walks the adjacency in
    node-range chunks (one contiguous ``indices`` slice per chunk — memmap
    friendly) and moves every node toward the cluster holding the plurality
    of its neighbors, as long as the target stays under ``slack`` times the
    even share.  Deterministic: no randomness, fixed chunk order.
    """
    n = graph.num_nodes
    C = int(num_clusters)
    labels = (np.arange(n, dtype=np.int64) * C) // max(n, 1)
    sizes = np.bincount(labels, minlength=C).astype(np.int64)
    cap = int(np.ceil(n / C * slack))
    indptr = graph.indptr
    for _ in range(rounds):
        moved_any = False
        for start in range(0, n, chunk_nodes):
            stop = min(start + chunk_nodes, n)
            lo, hi = int(indptr[start]), int(indptr[stop])
            if hi == lo:
                continue
            nbr_lab = labels[np.asarray(graph.indices[lo:hi])]
            deg = np.diff(indptr[start : stop + 1])
            local = np.repeat(np.arange(stop - start, dtype=np.int64), deg)
            # Plurality neighbor label per node: run-length count the sorted
            # (node, label) pairs, then keep each node's heaviest run.
            key = local * np.int64(C) + nbr_lab
            key.sort()
            run_start = np.r_[True, key[1:] != key[:-1]]
            run_key = key[run_start]
            run_count = np.diff(np.r_[np.flatnonzero(run_start), key.size])
            run_local = run_key // C
            order = np.lexsort((run_count, run_local))
            last = np.r_[run_local[order][1:] != run_local[order][:-1], True]
            best_rows = run_local[order][last]
            best_lab = (run_key % C)[order][last]
            cur = labels[start + best_rows]
            want = best_lab != cur
            if not want.any():
                continue
            nodes = start + best_rows[want]
            target = best_lab[want]
            # Admit moves per target up to remaining capacity, in node order.
            t_order = np.argsort(target, kind="stable")
            nodes, target = nodes[t_order], target[t_order]
            grp_start = np.r_[True, target[1:] != target[:-1]]
            rank = np.arange(nodes.size) - np.repeat(
                np.flatnonzero(grp_start), np.diff(np.r_[np.flatnonzero(grp_start), nodes.size])
            )
            allow = rank < (cap - sizes)[target]
            nodes, target = nodes[allow], target[allow]
            if nodes.size == 0:
                continue
            sizes -= np.bincount(labels[nodes], minlength=C)
            sizes += np.bincount(target, minlength=C)
            labels[nodes] = target
            moved_any = True
        if not moved_any:
            break
    return labels


def streaming_partition(
    graph: CSRGraph,
    num_parts: int,
    seed: int = 0,
    *,
    num_clusters: Optional[int] = None,
    chunk_nodes: int = 262_144,
    rounds: int = 4,
    refine_passes: int = 4,
    balance_tol: float = 0.08,
    slack: float = 1.3,
    fine_refine: Optional[bool] = None,
    weights: Optional[Sequence[float]] = None,
) -> np.ndarray:
    """Coarsen-once streaming variant of :func:`metis_like_partition`.

    The multilevel partitioner materializes a matching, a coarse graph, and
    an ``O(n * num_parts)`` refinement matrix per level — fine at 60k nodes,
    prohibitive at 10M.  This variant coarsens exactly once, in bounded
    memory: capacity-bounded label propagation (walking the CSR in
    contiguous node-range chunks) collapses the graph into
    ``num_clusters`` clusters, the weighted cluster graph — small by
    construction — is partitioned with the existing initial-partition +
    FM-refinement machinery, and the result is projected back.  A final
    fine-level refinement pass runs only when ``n * num_parts`` is small
    enough to afford it (``fine_refine=None`` decides automatically).

    Edge-cut quality lands within a modest factor of the in-memory
    partitioner (pinned by ``tests/graph/test_streaming_partition.py``)
    while peak memory stays ``O(chunk + num_clusters**2)``.
    """
    check_positive("num_parts", num_parts)
    check_positive("chunk_nodes", chunk_nodes)
    targets = _normalize_weights(weights, num_parts)
    n = graph.num_nodes
    if num_parts == 1:
        return np.zeros(n, dtype=np.int64)
    if num_clusters is None:
        num_clusters = int(min(max(64 * num_parts, 512), 2048, max(n // 4, num_parts)))
    num_clusters = max(int(num_clusters), num_parts)
    rng = rng_from(seed, 0x57E4)

    labels = _cluster_label_propagation(
        graph, num_clusters, rounds, int(chunk_nodes), slack
    )
    # Compact away empty clusters.
    uniq, labels = np.unique(labels, return_inverse=True)
    C = int(uniq.size)
    labels = labels.astype(np.int64)

    # Weighted cluster graph, accumulated densely (C is small by design).
    conn = np.zeros((C, C), dtype=np.float64)
    indptr = graph.indptr
    for start in range(0, n, int(chunk_nodes)):
        stop = min(start + int(chunk_nodes), n)
        lo, hi = int(indptr[start]), int(indptr[stop])
        if hi == lo:
            continue
        deg = np.diff(indptr[start : stop + 1])
        cu = np.repeat(labels[start:stop], deg)
        cv = labels[np.asarray(graph.indices[lo:hi])]
        np.add.at(conn, (cu, cv), 1.0)
    np.fill_diagonal(conn, 0.0)
    cu, cv = np.nonzero(conn)
    counts = np.bincount(cu, minlength=C)
    c_indptr = np.zeros(C + 1, dtype=np.int64)
    np.cumsum(counts, out=c_indptr[1:])
    coarse = _Level(
        indptr=c_indptr,
        indices=cv.astype(np.int64),
        edge_weights=conn[cu, cv],
        node_weights=np.bincount(labels, minlength=C).astype(np.float64),
        fine_to_coarse=None,
    )
    cparts = _initial_partition(coarse, num_parts, rng, targets)
    cparts = _refine(
        coarse, cparts, num_parts, refine_passes, balance_tol, targets
    )
    parts = cparts[labels].astype(np.int64)

    if fine_refine is None:
        fine_refine = n * num_parts <= 20_000_000 and graph.num_edges <= 30_000_000
    if fine_refine:
        fine = _Level(
            indptr=np.asarray(graph.indptr),
            indices=np.asarray(graph.indices),
            edge_weights=np.ones(graph.num_edges, dtype=np.float64),
            node_weights=np.ones(n, dtype=np.float64),
            fine_to_coarse=None,
        )
        parts = _refine(
            fine, parts, num_parts, refine_passes, balance_tol, targets
        )
    return parts.astype(np.int64)
