"""Sampled-epoch reuse: a keyed, byte-bounded cache of minibatches.

The counter-based hash sampler makes every sampled epoch a pure function of
``(global_seed, epoch, fanouts, seeds)`` — yet the engine re-samples
identical epochs from scratch once per dry-run strategy, once more for the
access census, and again at every benchmark sweep point.  ``SampleCache``
memoizes :class:`~repro.sampling.block.MiniBatch` objects under exactly
that key (the shuffle seed is folded in through the seed arrays
themselves), with an explicit byte budget and LRU eviction so memory stays
bounded.

Two lookup paths serve a request:

* **exact hit** — the same unique seed set was sampled before under the
  same ``(graph, sampler type, fanouts, global_seed, epoch)`` scope; the
  cached batch is returned as-is.
* **restriction** — some cached batch in the scope covers a *superset* of
  the requested seeds and the sampler is per-node deterministic
  (:class:`~repro.sampling.neighbor.NeighborSampler`).  Because every
  node's draws are independent of the rest of the frontier, the subset's
  minibatch equals the layerwise restriction of the superset batch to the
  destinations reachable from the requested seeds — computed with a few
  gathers instead of a full sampling pass, and **bit-identical** to direct
  sampling (pinned by ``tests/sampling/test_cache.py``).

The cache is a wall-clock optimization only: callers charge simulated
sampling time from the returned batch exactly as before, and cached batches
are bit-identical to freshly sampled ones, so simulated timelines, losses,
and gradients are unchanged (see DESIGN.md §5.9).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.sampling.block import Block, MiniBatch

#: Default byte budget (index arrays only) — a few hundred analog-scale
#: epochs; real deployments would size this against host memory.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


@dataclass
class SampleCacheStats:
    """Counters of one cache's lifetime (observability / tests)."""

    hits: int = 0
    restrictions: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.restrictions + self.misses

    def to_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "restrictions": self.restrictions,
            "misses": self.misses,
            "evictions": self.evictions,
        }


#: Budget pools entries can be charged against (see ``SampleCache.sample``).
CACHE_KINDS = ("train", "eval")

#: Lookup modes folded into the scope key.  Training and evaluation share
#: one epoch numbering, but serving runs its own epoch-space (one pseudo
#: epoch per batching window) — keying the scope by mode guarantees a
#: serving lookup can never alias a training epoch's cached batch even
#: when the ``(seed, epoch)`` pair collides numerically.
CACHE_MODES = ("train", "serve")


@dataclass
class _Entry:
    batch: MiniBatch
    nbytes: int
    scope: Tuple
    #: sorted unique seeds (== ``batch.seeds``), kept for superset lookup
    seeds: np.ndarray = field(repr=False, default=None)
    #: budget pool this entry is charged against
    kind: str = "train"


def _sorted_unique(a: np.ndarray) -> np.ndarray:
    """``np.unique`` for int id arrays, via sort + dedup mask.

    Seed chunks are small and usually already duplicate-free, where a plain
    sort beats the hash-based ``np.unique``; results are identical.
    """
    if a.size <= 1 or bool(np.all(a[1:] > a[:-1])):
        return a
    s = np.sort(a)
    keep = np.empty(s.size, dtype=bool)
    keep[0] = True
    np.not_equal(s[1:], s[:-1], out=keep[1:])
    return s[keep]


def _restrict(whole: MiniBatch, seeds_u: np.ndarray) -> Optional[MiniBatch]:
    """Layerwise restriction of ``whole`` to the subset ``seeds_u``.

    Walks the blocks output-to-input: the restricted frontier at each layer
    selects its destinations' complete edge runs out of the parent block
    (edges are dst-sorted, so each destination's in-edges are one
    contiguous slice), and the next frontier is the sorted-unique source
    union — the same construction :meth:`Block.from_global_edges` performs,
    expressed in parent-local indices.  Returns ``None`` if ``seeds_u``
    is not covered by ``whole`` (caller falls back to direct sampling).
    """
    frontier = seeds_u
    blocks: List[Block] = []
    for wb in reversed(whole.blocks):
        # Positions of the restricted destinations inside the parent block.
        sel = np.searchsorted(wb.dst_nodes, frontier)
        if sel.size and (
            sel[-1] >= wb.dst_nodes.size
            or not np.array_equal(wb.dst_nodes[sel], frontier)
        ):
            return None
        ptr = wb.dst_edge_ptr()
        starts = ptr[sel]
        lens = ptr[sel + 1] - starts
        total = int(lens.sum())
        offs = np.cumsum(lens) - lens
        flat = np.repeat(starts - offs, lens) + np.arange(total, dtype=np.int64)
        es_w = wb.edge_src[flat]  # parent-local source index per kept edge
        dst_in_src_w = wb.dst_in_src[sel]
        # Sorted-unique source union via a presence mask (cheaper than
        # union1d on global ids), plus the parent-local -> child-local map.
        present = np.zeros(wb.num_src, dtype=bool)
        present[es_w] = True
        present[dst_in_src_w] = True
        union_w = np.flatnonzero(present)
        inv = np.empty(wb.num_src, dtype=np.int64)
        inv[union_w] = np.arange(union_w.size, dtype=np.int64)
        src_nodes = wb.src_nodes[union_w]
        blocks.append(
            Block(
                src_nodes=src_nodes,
                dst_nodes=frontier,
                dst_in_src=inv[dst_in_src_w],
                edge_src=inv[es_w],
                edge_dst=np.repeat(np.arange(sel.size, dtype=np.int64), lens),
            )
        )
        frontier = src_nodes
    blocks.reverse()
    return MiniBatch(seeds=seeds_u, blocks=blocks)


class SampleCache:
    """LRU cache of sampled minibatches keyed by their pure-function inputs.

    Parameters
    ----------
    max_bytes:
        Byte budget over the cached index arrays of **training** batches.
        Least-recently-used entries are evicted once the budget is
        exceeded; a batch larger than its whole budget is returned
        uncached.
    restrict:
        Allow deriving subset batches from cached supersets (only ever
        applied when the sampler declares ``per_node_deterministic``).
    eval_max_bytes:
        Separate byte budget for ``kind="eval"`` entries (accuracy
        evaluation sweeps a huge pseudo-epoch of batches; giving them
        their own pool keeps them from thrashing the training entries).
        Defaults to ``max_bytes // 4``.  Eviction never crosses pools.
    """

    def __init__(
        self,
        max_bytes: int = DEFAULT_MAX_BYTES,
        restrict: bool = True,
        eval_max_bytes: Optional[int] = None,
    ):
        if int(max_bytes) <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        if eval_max_bytes is None:
            eval_max_bytes = max(1, int(max_bytes) // 4)
        if int(eval_max_bytes) <= 0:
            raise ValueError(
                f"eval_max_bytes must be positive, got {eval_max_bytes}"
            )
        self.max_bytes = int(max_bytes)
        self.restrict_enabled = bool(restrict)
        self.stats = SampleCacheStats()
        self._budgets = {"train": int(max_bytes), "eval": int(eval_max_bytes)}
        self._entries: "OrderedDict[Tuple, _Entry]" = OrderedDict()
        #: scope -> entry keys, in insertion order (superset lookup walks
        #: this newest-first; dead keys are pruned lazily)
        self._scopes: Dict[Tuple, List[Tuple]] = {}
        #: graph id -> (graph, live entry count).  Holding the reference
        #: keeps ``id()`` from being reused while entries point at it.
        self._graphs: Dict[int, list] = {}
        self._bytes = 0
        self._kind_bytes = {k: 0 for k in CACHE_KINDS}
        self._kind_counts = {k: 0 for k in CACHE_KINDS}

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def current_bytes(self) -> int:
        return self._bytes

    def bytes_of(self, kind: str) -> int:
        """Bytes currently charged against the ``kind`` budget pool."""
        return self._kind_bytes[kind]

    def export_keys(self) -> List[Tuple]:
        """Stable snapshot of the live entry keys (checkpoint metadata).

        The first key component, ``id(graph)``, is process-local, so it is
        dropped; what remains — sampler type, fanouts, global seed, epoch,
        seed-set digest (hex), budget pool — identifies each entry across
        processes.  Entries themselves are never persisted: they are pure
        functions of these keys and re-fill bit-identically on resume.
        """
        out: List[Tuple] = []
        for key, entry in self._entries.items():
            _, sampler_type, shape, seed, epoch, mode = key[:-1]
            out.append(
                (sampler_type, shape, int(seed), int(epoch), mode,
                 key[-1].hex(), entry.kind)
            )
        return out

    def clear(self) -> None:
        self._entries.clear()
        self._scopes.clear()
        self._graphs.clear()
        self._bytes = 0
        self._kind_bytes = {k: 0 for k in CACHE_KINDS}
        self._kind_counts = {k: 0 for k in CACHE_KINDS}

    # ------------------------------------------------------------------ #
    @staticmethod
    def _scope_of(sampler, epoch: int, mode: str = "train") -> Tuple:
        shape = getattr(sampler, "fanouts", None)
        if shape is None:
            shape = getattr(sampler, "layer_budgets", None)
        return (
            id(sampler.graph),
            type(sampler).__name__,
            tuple(shape) if shape is not None else None,
            int(sampler.global_seed),
            int(epoch),
            mode,
        )

    @staticmethod
    def _digest(seeds_u: np.ndarray) -> bytes:
        return hashlib.blake2b(seeds_u.tobytes(), digest_size=16).digest()

    def sample(
        self,
        sampler,
        seeds: np.ndarray,
        epoch: int = 0,
        kind: str = "train",
        mode: str = "train",
    ) -> MiniBatch:
        """Sampler-compatible entry point: ``sample(sampler, seeds, epoch)``.

        Returns the same :class:`MiniBatch` (bit-identical arrays) as
        ``sampler.sample(seeds, epoch=epoch)`` would.  ``kind`` picks the
        budget pool the inserted entry is charged against — evaluation
        callers pass ``"eval"`` so their one-shot batch sweeps can never
        evict training entries.  ``mode`` is part of the scope key:
        serving callers pass ``"serve"`` so their epoch-space can never
        alias training entries (see :data:`CACHE_MODES`).
        """
        if kind not in CACHE_KINDS:
            raise ValueError(f"kind must be one of {CACHE_KINDS}, got {kind!r}")
        if mode not in CACHE_MODES:
            raise ValueError(f"mode must be one of {CACHE_MODES}, got {mode!r}")
        seeds_u = _sorted_unique(np.asarray(seeds, dtype=np.int64))
        scope = self._scope_of(sampler, epoch, mode)
        key = scope + (self._digest(seeds_u),)

        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry.batch

        batch = None
        if self.restrict_enabled and getattr(
            sampler, "per_node_deterministic", False
        ):
            parent = self._find_superset(scope, seeds_u)
            if parent is not None:
                batch = _restrict(parent.batch, seeds_u)
        if batch is not None:
            self.stats.restrictions += 1
        else:
            batch = sampler.sample(seeds_u, epoch=epoch)
            self.stats.misses += 1
        self._insert(key, scope, sampler.graph, seeds_u, batch, kind)
        return batch

    # ------------------------------------------------------------------ #
    def _find_superset(self, scope: Tuple, seeds_u: np.ndarray) -> Optional[_Entry]:
        keys = self._scopes.get(scope)
        if not keys:
            return None
        live: List[Tuple] = []
        found: Optional[_Entry] = None
        for key in keys:
            entry = self._entries.get(key)
            if entry is None:
                continue  # evicted; pruned below
            live.append(key)
            if found is not None or entry.seeds.size < seeds_u.size:
                continue
            pos = np.searchsorted(entry.seeds, seeds_u)
            if pos.size == 0 or (
                pos[-1] < entry.seeds.size
                and np.array_equal(entry.seeds[pos], seeds_u)
            ):
                found = entry
        if len(live) != len(keys):
            self._scopes[scope] = live
        return found

    def _insert(
        self,
        key: Tuple,
        scope: Tuple,
        graph,
        seeds_u: np.ndarray,
        batch: MiniBatch,
        kind: str,
    ) -> None:
        nbytes = batch.nbytes()
        if nbytes > self._budgets[kind]:
            return  # larger than this pool's whole budget: serve uncached
        self._entries[key] = _Entry(
            batch=batch, nbytes=nbytes, scope=scope, seeds=batch.seeds, kind=kind
        )
        self._scopes.setdefault(scope, []).append(key)
        gid = scope[0]
        holder = self._graphs.get(gid)
        if holder is None:
            self._graphs[gid] = [graph, 1]
        else:
            holder[1] += 1
        self._bytes += nbytes
        self._kind_bytes[kind] += nbytes
        self._kind_counts[kind] += 1
        # Evict least-recently-used entries *of the same pool* — eval
        # sweeps stay inside eval_max_bytes and cannot push out training
        # entries (and vice versa).
        while (
            self._kind_bytes[kind] > self._budgets[kind]
            and self._kind_counts[kind] > 1
        ):
            self._evict_oldest(kind)

    def _evict_oldest(self, kind: str) -> None:
        for old_key, old in self._entries.items():
            if old.kind == kind:
                break
        else:  # pragma: no cover - guarded by _kind_counts > 1
            return
        del self._entries[old_key]
        self._bytes -= old.nbytes
        self._kind_bytes[kind] -= old.nbytes
        self._kind_counts[kind] -= 1
        self.stats.evictions += 1
        holder = self._graphs.get(old.scope[0])
        if holder is not None:
            holder[1] -= 1
            if holder[1] <= 0:
                del self._graphs[old.scope[0]]
