"""Node-wise neighbor sampling (the paper's default sampling algorithm).

``NeighborSampler`` implements fanout-bounded node-wise sampling (paper
Fig. 2): starting from the seed nodes, each layer samples up to ``fanout``
in-neighbors per frontier node; the next layer's frontier is the union of
the sampled sources.

Sampling uses a vectorized counter-based hash (splitmix64): draw ``j`` for
node ``v`` at layer ``k`` of epoch ``e`` is a pure function of
``(global_seed, e, k, v, j)``.  Nodes with degree at most the fanout take
their full neighbor list; higher-degree nodes draw ``fanout`` neighbors
with replacement and de-duplicate, which matches the sampled-subgraph
semantics the strategies operate on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.graph.csr import CSRGraph
from repro.sampling.block import Block, MiniBatch

_MASK = np.uint64(0xFFFFFFFFFFFFFFFF)
_A = np.uint64(0x9E3779B97F4A7C15)
_B = np.uint64(0xBF58476D1CE4E5B9)
_C = np.uint64(0x94D049BB133111EB)
_S30 = np.uint64(30)
_S27 = np.uint64(27)
_S31 = np.uint64(31)


def _mix64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer over a uint64 array."""
    x = (x + _A) & _MASK
    x = ((x ^ (x >> _S30)) * _B) & _MASK
    x = ((x ^ (x >> _S27)) * _C) & _MASK
    return x ^ (x >> _S31)


@dataclass(frozen=True)
class SamplerStats:
    """Per-call sampling workload statistics (feed the timeline model)."""

    edges_sampled: int
    frontier_size: int


class NeighborSampler:
    """Fanout-bounded node-wise sampler over a :class:`CSRGraph`.

    Parameters
    ----------
    graph:
        Topology to sample from.
    fanouts:
        One fanout per GNN layer, ordered from the *input* layer to the
        *output* layer (``[10, 10, 10]`` for the paper's default 3-layer
        models; ``fanouts[-1]`` applies to the seeds).
    global_seed:
        Base seed of the counter-based hash.
    """

    #: Draws for node ``v`` at layer ``k`` of epoch ``e`` depend only on
    #: ``(global_seed, e, k, v)`` — never on the rest of the frontier.  This
    #: is what lets :class:`~repro.sampling.cache.SampleCache` derive a seed
    #: subset's minibatch by *restricting* a cached superset batch instead
    #: of re-sampling.
    per_node_deterministic = True

    def __init__(self, graph: CSRGraph, fanouts: Sequence[int], global_seed: int = 0):
        if not fanouts:
            raise ValueError("fanouts must be non-empty")
        for f in fanouts:
            if int(f) != f or (f <= 0 and f != -1):
                raise ValueError(
                    "fanouts must be positive integers (or -1 for "
                    f"full-neighbor layers), got {fanouts}"
                )
        self.graph = graph
        # -1 follows the DGL convention: take the entire neighbor list.
        self.fanouts = [
            graph.num_nodes if f == -1 else int(f) for f in fanouts
        ]
        self.global_seed = int(global_seed)

    # ------------------------------------------------------------------ #
    @property
    def num_layers(self) -> int:
        return len(self.fanouts)

    def _layer_key(self, epoch: int, layer: int) -> np.uint64:
        base = np.uint64(self.global_seed & 0xFFFFFFFFFFFFFFFF)
        with np.errstate(over="ignore"):
            k = _mix64(np.asarray([base], dtype=np.uint64))[0]
            k = _mix64(np.asarray([k ^ np.uint64(epoch)], dtype=np.uint64))[0]
            k = _mix64(np.asarray([k ^ np.uint64(layer)], dtype=np.uint64))[0]
        return k

    def _sample_layer(
        self, frontier: np.ndarray, fanout: int, epoch: int, layer: int
    ) -> Block:
        """Sample one layer: ``frontier`` are the destination nodes."""
        frontier = np.unique(np.asarray(frontier, dtype=np.int64))
        g = self.graph
        starts = g.indptr[frontier]
        degs = g.indptr[frontier + 1] - starts

        full_mask = degs <= fanout
        # --- low-degree nodes keep their entire neighbor list ----------- #
        full_nodes = frontier[full_mask]
        full_starts = starts[full_mask]
        full_degs = degs[full_mask]
        total_full = int(full_degs.sum())
        if total_full:
            offs = np.cumsum(full_degs) - full_degs
            flat = np.repeat(full_starts - offs, full_degs) + np.arange(total_full)
            full_src = g.indices[flat]
            full_dst = np.repeat(full_nodes, full_degs)
        else:
            full_src = np.empty(0, dtype=np.int64)
            full_dst = np.empty(0, dtype=np.int64)

        # --- high-degree nodes draw `fanout` neighbors hash-based ------- #
        samp_nodes = frontier[~full_mask]
        if samp_nodes.size:
            layer_key = self._layer_key(epoch, layer)
            with np.errstate(over="ignore"):
                node_keys = _mix64(samp_nodes.astype(np.uint64) ^ layer_key)
                draw_ids = np.arange(fanout, dtype=np.uint64)
                # (n, fanout) grid of independent hashes.
                vals = _mix64(
                    (node_keys[:, None] + (draw_ids[None, :] + np.uint64(1)) * _A)
                    & _MASK
                )
            samp_degs = degs[~full_mask].astype(np.uint64)
            picks = (vals % samp_degs[:, None]).astype(np.int64)
            samp_starts = starts[~full_mask]
            edge_pos = samp_starts[:, None] + picks
            samp_src = g.indices[edge_pos.ravel()]
            samp_dst = np.repeat(samp_nodes, fanout)
            # Drop duplicate (dst, src) draws (sampling with replacement).
            key = samp_dst * np.int64(g.num_nodes) + samp_src
            _, first = np.unique(key, return_index=True)
            first.sort()
            samp_src, samp_dst = samp_src[first], samp_dst[first]
        else:
            samp_src = np.empty(0, dtype=np.int64)
            samp_dst = np.empty(0, dtype=np.int64)

        edge_src = np.concatenate([full_src, samp_src])
        edge_dst = np.concatenate([full_dst, samp_dst])
        # Isolated frontier nodes still need to appear as destinations:
        # give them a degenerate self-edge so downstream shapes line up.
        isolated = frontier[degs == 0]
        if isolated.size:
            edge_src = np.concatenate([edge_src, isolated])
            edge_dst = np.concatenate([edge_dst, isolated])
        return Block.from_global_edges(edge_src, edge_dst)

    # ------------------------------------------------------------------ #
    def sample(self, seeds: np.ndarray, epoch: int = 0) -> MiniBatch:
        """Sample the full layered computation graph for ``seeds``.

        Returns a :class:`MiniBatch` whose ``blocks[0]`` is the input layer.
        """
        seeds = np.asarray(seeds, dtype=np.int64)
        if seeds.size == 0:
            raise ValueError("cannot sample an empty seed batch")
        blocks: List[Block] = []
        frontier = seeds
        for layer in range(self.num_layers - 1, -1, -1):
            block = self._sample_layer(frontier, self.fanouts[layer], epoch, layer)
            blocks.append(block)
            frontier = block.src_nodes
        blocks.reverse()
        return MiniBatch(seeds=np.unique(seeds), blocks=blocks)

    def stats(self, batch: MiniBatch) -> SamplerStats:
        """Workload statistics for a sampled batch."""
        return SamplerStats(
            edges_sampled=batch.total_edges(),
            frontier_size=batch.input_nodes.shape[0],
        )
