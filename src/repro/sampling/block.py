"""Bipartite computation blocks (DGL's "message flow graphs").

A :class:`Block` is one GNN layer's computation graph: edges flow from
*source* nodes (embedding inputs) to *destination* nodes (embedding
outputs).  Strategies repartition blocks along different dimensions —
GDP by subgraph, NFP by feature dimension, SNP by source node, DNP by
destination node (paper Fig. 5) — so the block is the engine's central
currency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.tensor.sparse import CSRMatrix


@dataclass
class Block:
    """One layer's bipartite sampled graph.

    Attributes
    ----------
    src_nodes:
        Unique global ids of source nodes.  Guaranteed to contain every
        destination node (so models can always read the destination's own
        input, e.g. GraphSAGE's self term or GAT's self-loop).
    dst_nodes:
        Unique global ids of destination nodes.
    dst_in_src:
        ``dst_nodes[i] == src_nodes[dst_in_src[i]]`` — local position of
        each destination within the source array.
    edge_src / edge_dst:
        Per-edge local indices into ``src_nodes`` / ``dst_nodes``; edges are
        sorted by ``edge_dst``.  Self-edges are *not* materialized here;
        models add them when their aggregation wants them.
    """

    src_nodes: np.ndarray
    dst_nodes: np.ndarray
    dst_in_src: np.ndarray
    edge_src: np.ndarray
    edge_dst: np.ndarray

    def __post_init__(self):
        if self.dst_in_src.shape != self.dst_nodes.shape:
            raise ValueError("dst_in_src must align with dst_nodes")
        if self.edge_src.shape != self.edge_dst.shape:
            raise ValueError("edge_src/edge_dst must align")

    # ------------------------------------------------------------------ #
    @property
    def num_src(self) -> int:
        return int(self.src_nodes.shape[0])

    @property
    def num_dst(self) -> int:
        return int(self.dst_nodes.shape[0])

    @property
    def num_edges(self) -> int:
        return int(self.edge_src.shape[0])

    def adjacency(self) -> CSRMatrix:
        """``(num_dst, num_src)`` unweighted adjacency for SpMM kernels."""
        return CSRMatrix.from_edges(
            self.edge_dst, self.edge_src, (self.num_dst, self.num_src)
        )

    def structure_bytes(self) -> int:
        """Wire size of the block structure (drives T_build comm cost).

        Counts the edge index pairs plus the global id arrays, at 8 bytes
        per entry — the same bookkeeping a real engine serializes when
        shuffling computation graphs between GPUs.
        """
        return 8 * (
            2 * self.num_edges + self.num_src + self.num_dst
        )

    def degree_per_dst(self) -> np.ndarray:
        """In-degree of each destination node within the block."""
        return np.bincount(self.edge_dst, minlength=self.num_dst)

    @classmethod
    def from_global_edges(
        cls, edge_src_global: np.ndarray, edge_dst_global: np.ndarray
    ) -> "Block":
        """Build a block from global-id edge endpoints.

        Destinations are the unique ``edge_dst_global``; sources are the
        unique union of both endpoint sets (ensuring destinations appear as
        sources).  Edges come out sorted by destination.
        """
        edge_src_global = np.asarray(edge_src_global, dtype=np.int64)
        edge_dst_global = np.asarray(edge_dst_global, dtype=np.int64)
        dst_nodes = np.unique(edge_dst_global)
        src_nodes = np.unique(np.concatenate([edge_src_global, dst_nodes]))
        edge_src = np.searchsorted(src_nodes, edge_src_global)
        edge_dst = np.searchsorted(dst_nodes, edge_dst_global)
        order = np.argsort(edge_dst, kind="stable")
        dst_in_src = np.searchsorted(src_nodes, dst_nodes)
        return cls(
            src_nodes=src_nodes,
            dst_nodes=dst_nodes,
            dst_in_src=dst_in_src,
            edge_src=edge_src[order],
            edge_dst=edge_dst[order],
        )


@dataclass
class MiniBatch:
    """The sampled computation graphs for one batch of seed nodes.

    ``blocks[0]`` is the *first layer* in the paper's terminology — the
    layer furthest from the seeds, consuming input node features.
    ``blocks[-1]``'s destinations are exactly ``seeds``.
    """

    seeds: np.ndarray
    blocks: List[Block]

    @property
    def num_layers(self) -> int:
        return len(self.blocks)

    @property
    def input_nodes(self) -> np.ndarray:
        """Global ids whose input features the batch needs."""
        return self.blocks[0].src_nodes

    def total_edges(self) -> int:
        return sum(b.num_edges for b in self.blocks)
