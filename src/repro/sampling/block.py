"""Bipartite computation blocks (DGL's "message flow graphs").

A :class:`Block` is one GNN layer's computation graph: edges flow from
*source* nodes (embedding inputs) to *destination* nodes (embedding
outputs).  Strategies repartition blocks along different dimensions —
GDP by subgraph, NFP by feature dimension, SNP by source node, DNP by
destination node (paper Fig. 5) — so the block is the engine's central
currency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.tensor.sparse import CSRMatrix


def _is_nondecreasing(a: np.ndarray) -> bool:
    return a.shape[0] < 2 or bool(np.all(a[1:] >= a[:-1]))


@dataclass
class Block:
    """One layer's bipartite sampled graph.

    Attributes
    ----------
    src_nodes:
        Unique global ids of source nodes.  Guaranteed to contain every
        destination node (so models can always read the destination's own
        input, e.g. GraphSAGE's self term or GAT's self-loop).
    dst_nodes:
        Unique global ids of destination nodes.
    dst_in_src:
        ``dst_nodes[i] == src_nodes[dst_in_src[i]]`` — local position of
        each destination within the source array.
    edge_src / edge_dst:
        Per-edge local indices into ``src_nodes`` / ``dst_nodes``; edges are
        sorted by ``edge_dst``.  Self-edges are *not* materialized here;
        models add them when their aggregation wants them.
    """

    src_nodes: np.ndarray
    dst_nodes: np.ndarray
    dst_in_src: np.ndarray
    edge_src: np.ndarray
    edge_dst: np.ndarray
    # Derived structures, built on first use and reused for the lifetime of
    # the block (blocks are immutable once constructed).
    _adj: Optional[CSRMatrix] = field(default=None, repr=False, compare=False)
    _dst_ptr: Optional[np.ndarray] = field(default=None, repr=False, compare=False)

    def __post_init__(self):
        if self.dst_in_src.shape != self.dst_nodes.shape:
            raise ValueError("dst_in_src must align with dst_nodes")
        if self.edge_src.shape != self.edge_dst.shape:
            raise ValueError("edge_src/edge_dst must align")

    # ------------------------------------------------------------------ #
    @property
    def num_src(self) -> int:
        return int(self.src_nodes.shape[0])

    @property
    def num_dst(self) -> int:
        return int(self.dst_nodes.shape[0])

    @property
    def num_edges(self) -> int:
        return int(self.edge_src.shape[0])

    def adjacency(self) -> CSRMatrix:
        """``(num_dst, num_src)`` unweighted adjacency for SpMM kernels.

        Built once per block and cached — strategies ask for the same
        adjacency per layer per device per batch, and the CSR build is the
        expensive part.
        """
        if self._adj is None:
            self._adj = CSRMatrix.from_edges(
                self.edge_dst, self.edge_src, (self.num_dst, self.num_src)
            )
        return self._adj

    def dst_edge_ptr(self) -> np.ndarray:
        """``(num_dst + 1,)`` CSR-style pointer into the dst-sorted edges.

        ``edge_*[ptr[i]:ptr[i+1]]`` are exactly destination ``i``'s in-edges
        (edges are sorted by ``edge_dst``).  Cached: the sample-cache
        restriction path slices many seed subsets out of one block.
        """
        if self._dst_ptr is None:
            ptr = np.zeros(self.num_dst + 1, dtype=np.int64)
            np.cumsum(
                np.bincount(self.edge_dst, minlength=self.num_dst),
                out=ptr[1:],
            )
            self._dst_ptr = ptr
        return self._dst_ptr

    def nbytes(self) -> int:
        """Resident bytes of the index arrays (sample-cache accounting)."""
        return int(
            self.src_nodes.nbytes
            + self.dst_nodes.nbytes
            + self.dst_in_src.nbytes
            + self.edge_src.nbytes
            + self.edge_dst.nbytes
        )

    def structure_bytes(self) -> int:
        """Wire size of the block structure (drives T_build comm cost).

        Counts the edge index pairs plus the global id arrays, at 8 bytes
        per entry — the same bookkeeping a real engine serializes when
        shuffling computation graphs between GPUs.
        """
        return 8 * (
            2 * self.num_edges + self.num_src + self.num_dst
        )

    def degree_per_dst(self) -> np.ndarray:
        """In-degree of each destination node within the block."""
        return np.bincount(self.edge_dst, minlength=self.num_dst)

    @classmethod
    def from_global_edges(
        cls, edge_src_global: np.ndarray, edge_dst_global: np.ndarray
    ) -> "Block":
        """Build a block from global-id edge endpoints.

        Destinations are the unique ``edge_dst_global``; sources are the
        unique union of both endpoint sets (ensuring destinations appear as
        sources).  Edges come out sorted by destination.
        """
        edge_src_global = np.asarray(edge_src_global, dtype=np.int64)
        edge_dst_global = np.asarray(edge_dst_global, dtype=np.int64)
        dst_nodes = np.unique(edge_dst_global)
        src_nodes = np.unique(np.concatenate([edge_src_global, dst_nodes]))
        # One merged lookup serves both the per-edge sources and the
        # dst-within-src positions.
        ne = edge_src_global.shape[0]
        pos = np.searchsorted(
            src_nodes, np.concatenate([edge_src_global, dst_nodes])
        )
        edge_src = pos[:ne]
        dst_in_src = pos[ne:]
        edge_dst = np.searchsorted(dst_nodes, edge_dst_global)
        if not _is_nondecreasing(edge_dst_global):
            # Only permute when the input isn't already dst-sorted — the
            # full-neighbor sampling path emits sorted runs.
            order = np.argsort(edge_dst, kind="stable")
            edge_src = edge_src[order]
            edge_dst = edge_dst[order]
        return cls(
            src_nodes=src_nodes,
            dst_nodes=dst_nodes,
            dst_in_src=dst_in_src,
            edge_src=edge_src,
            edge_dst=edge_dst,
        )


@dataclass
class MiniBatch:
    """The sampled computation graphs for one batch of seed nodes.

    ``blocks[0]`` is the *first layer* in the paper's terminology — the
    layer furthest from the seeds, consuming input node features.
    ``blocks[-1]``'s destinations are exactly ``seeds``.
    """

    seeds: np.ndarray
    blocks: List[Block]

    @property
    def num_layers(self) -> int:
        return len(self.blocks)

    @property
    def input_nodes(self) -> np.ndarray:
        """Global ids whose input features the batch needs."""
        return self.blocks[0].src_nodes

    def total_edges(self) -> int:
        return sum(b.num_edges for b in self.blocks)

    def nbytes(self) -> int:
        """Resident bytes of all index arrays (sample-cache accounting)."""
        return int(self.seeds.nbytes) + sum(b.nbytes() for b in self.blocks)
