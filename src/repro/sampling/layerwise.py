"""Layer-wise (FastGCN/LADIES-style) sampling.

APT treats graph sampling as a black box: any algorithm that produces
bipartite blocks plugs into the unified engine (paper §4.1 "APT is general
for different graph sampling algorithms").  This module provides the other
major sampling family beside node-wise fanout sampling: *layer-wise*
sampling draws a fixed **budget of nodes per layer** (LADIES-style, from
the union of the frontier's neighborhoods, importance-weighted by degree)
instead of a fixed fanout per node — bounding layer width and avoiding the
neighbor explosion.

Determinism note: node-wise sampling is per-node deterministic, which is
what makes the four strategies *exactly* equivalent under any seed
grouping.  Layer-wise sampling is inherently a per-batch decision (one
budget for the whole layer), so its draws are keyed on the *seed set*
instead: the same set of seeds always yields the same blocks (full
reproducibility, and exact strategy equivalence whenever strategies group
seeds identically, e.g. GDP vs NFP).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.graph.csr import CSRGraph
from repro.sampling.block import Block, MiniBatch
from repro.utils.random import rng_from


class LayerWiseSampler:
    """LADIES-style layer-budget sampler over a :class:`CSRGraph`.

    Parameters
    ----------
    graph:
        Topology to sample from.
    layer_budgets:
        Maximum sampled sources per layer, input layer first (mirrors the
        fanout convention of :class:`~repro.sampling.neighbor.NeighborSampler`).
    global_seed:
        Base seed; draws are keyed on ``(global_seed, epoch, layer,
        seed-set hash)``.
    importance:
        ``"degree"`` (LADIES' squared-norm proxy) or ``"uniform"``.
    """

    #: Draws are keyed on the whole seed *set* (one budget per layer), so a
    #: subset's minibatch cannot be derived from a superset's — the sample
    #: cache may memoize exact repeats but must never restrict.
    per_node_deterministic = False

    def __init__(
        self,
        graph: CSRGraph,
        layer_budgets: Sequence[int],
        global_seed: int = 0,
        importance: str = "degree",
    ):
        if not layer_budgets:
            raise ValueError("layer_budgets must be non-empty")
        for b in layer_budgets:
            if int(b) != b or b <= 0:
                raise ValueError(
                    f"layer budgets must be positive integers, got {layer_budgets}"
                )
        if importance not in ("degree", "uniform"):
            raise ValueError(f"unknown importance scheme {importance!r}")
        self.graph = graph
        self.layer_budgets = [int(b) for b in layer_budgets]
        self.global_seed = int(global_seed)
        self.importance = importance

    @property
    def num_layers(self) -> int:
        return len(self.layer_budgets)

    # ------------------------------------------------------------------ #
    def _rng(self, frontier: np.ndarray, epoch: int, layer: int) -> np.random.Generator:
        """Generator keyed on the (sorted, unique) frontier contents."""
        digest = int(
            np.bitwise_xor.reduce(
                (frontier.astype(np.uint64) + np.uint64(0x9E3779B9))
                * np.uint64(0x85EBCA6B)
            )
            & 0xFFFFFFFF
        )
        return rng_from(self.global_seed, epoch, layer, digest)

    def _candidate_pool(self, frontier: np.ndarray) -> np.ndarray:
        """Union of the frontier's in-neighborhoods (vectorized)."""
        g = self.graph
        starts, stops = g.neighbor_slices(frontier)
        lens = stops - starts
        total = int(lens.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        offsets = np.cumsum(lens) - lens
        flat = np.repeat(starts - offsets, lens) + np.arange(total)
        return np.unique(g.indices[flat])

    def _sample_layer(self, frontier: np.ndarray, budget: int, epoch: int, layer: int) -> Block:
        frontier = np.unique(np.asarray(frontier, dtype=np.int64))
        pool = self._candidate_pool(frontier)
        if pool.size > budget:
            rng = self._rng(frontier, epoch, layer)
            if self.importance == "degree":
                w = self.graph.in_degrees[pool].astype(np.float64) + 1.0
                p = w / w.sum()
            else:
                p = None
            chosen = np.sort(rng.choice(pool, size=budget, replace=False, p=p))
        else:
            chosen = pool

        # Keep the original edges whose source was chosen.
        g = self.graph
        starts, stops = g.neighbor_slices(frontier)
        lens = stops - starts
        total = int(lens.sum())
        if total:
            offsets = np.cumsum(lens) - lens
            flat = np.repeat(starts - offsets, lens) + np.arange(total)
            all_src = g.indices[flat]
            all_dst = np.repeat(frontier, lens)
            keep = np.isin(all_src, chosen, assume_unique=False)
            edge_src, edge_dst = all_src[keep], all_dst[keep]
        else:
            edge_src = np.empty(0, dtype=np.int64)
            edge_dst = np.empty(0, dtype=np.int64)

        # Destinations left without any sampled source still need output
        # rows: give them a degenerate self-edge (they read their own input).
        covered = np.zeros(frontier.size, dtype=bool)
        covered[np.searchsorted(frontier, np.unique(edge_dst))] = True
        uncovered = frontier[~covered]
        if uncovered.size:
            edge_src = np.concatenate([edge_src, uncovered])
            edge_dst = np.concatenate([edge_dst, uncovered])
        return Block.from_global_edges(edge_src, edge_dst)

    # ------------------------------------------------------------------ #
    def sample(self, seeds: np.ndarray, epoch: int = 0) -> MiniBatch:
        """Sample the layered computation graph for one seed batch."""
        seeds = np.asarray(seeds, dtype=np.int64)
        if seeds.size == 0:
            raise ValueError("cannot sample an empty seed batch")
        blocks: List[Block] = []
        frontier = seeds
        for layer in range(self.num_layers - 1, -1, -1):
            block = self._sample_layer(
                frontier, self.layer_budgets[layer], epoch, layer
            )
            blocks.append(block)
            frontier = block.src_nodes
        blocks.reverse()
        return MiniBatch(seeds=np.unique(seeds), blocks=blocks)
