"""Graph sampling: node-wise fanout sampling into bipartite blocks (MFGs).

The sampler is *counter-based*: the neighbors drawn for a node depend only on
``(global_seed, epoch, layer, node_id)``, computed with a vectorized
splitmix64 hash instead of a sequential RNG.  Two consequences matter:

* the same node sampled on two different simulated GPUs (or under two
  different parallelization strategies) yields the *identical* neighbor
  multiset, which is what lets the engine prove the strategies semantically
  equivalent (paper Fig. 6) instead of just statistically similar;
* sampling is embarrassingly parallel and fully vectorized.
"""

from repro.sampling.block import Block, MiniBatch
from repro.sampling.cache import SampleCache, SampleCacheStats
from repro.sampling.neighbor import NeighborSampler
from repro.sampling.layerwise import LayerWiseSampler
from repro.sampling.batching import EpochIterator, iter_epoch_batches

__all__ = [
    "Block",
    "MiniBatch",
    "NeighborSampler",
    "LayerWiseSampler",
    "SampleCache",
    "SampleCacheStats",
    "EpochIterator",
    "iter_epoch_batches",
]
