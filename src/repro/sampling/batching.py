"""Seed batching and epoch iteration.

A *global batch* is ``batch_size_per_gpu * num_gpus`` seeds; each strategy
then distributes a global batch's seeds over the simulated GPUs its own way
(round-robin for GDP/NFP, partition-local for SNP/DNP — paper §3.2).
Keeping the global batch sequence strategy-independent is the second half of
the semantic-equivalence guarantee: together with weighted gradient
averaging, every strategy applies the exact same sequence of parameter
updates.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from repro.utils.random import rng_from


class EpochIterator:
    """Deterministic shuffled iteration over seed-node global batches.

    Parameters
    ----------
    seeds:
        All training seed nodes.
    global_batch_size:
        Seeds per global batch (``per_gpu_batch * num_gpus``); the final
        partial batch is kept (matching DGL's default drop_last=False).
    shuffle_seed:
        Base seed; the shuffle also keys on the epoch number so every epoch
        visits seeds in a fresh order, identically across strategies.
    """

    def __init__(
        self,
        seeds: np.ndarray,
        global_batch_size: int,
        shuffle_seed: int = 0,
    ):
        self.seeds = np.unique(np.asarray(seeds, dtype=np.int64))
        if self.seeds.size == 0:
            raise ValueError("seed set is empty")
        if global_batch_size <= 0:
            raise ValueError(
                f"global_batch_size must be positive, got {global_batch_size}"
            )
        self.global_batch_size = int(global_batch_size)
        self.shuffle_seed = int(shuffle_seed)

    def num_batches(self) -> int:
        return -(-self.seeds.size // self.global_batch_size)

    def epoch_batches(self, epoch: int) -> List[np.ndarray]:
        """Return the list of global seed batches for ``epoch``."""
        rng = rng_from(self.shuffle_seed, 0x5EED, epoch)
        order = rng.permutation(self.seeds.size)
        shuffled = self.seeds[order]
        return [
            shuffled[i : i + self.global_batch_size]
            for i in range(0, shuffled.size, self.global_batch_size)
        ]

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self.epoch_batches(0))


def iter_epoch_batches(
    seeds: np.ndarray,
    global_batch_size: int,
    epoch: int,
    shuffle_seed: int = 0,
) -> List[np.ndarray]:
    """Convenience wrapper: the global batches of one epoch."""
    return EpochIterator(seeds, global_batch_size, shuffle_seed).epoch_batches(epoch)
