"""Deterministic random-number helpers.

Every stochastic component of the library (graph generation, neighbor
sampling, parameter initialization, dropout) draws from a
:class:`numpy.random.Generator` derived from an explicit integer seed.  Two
properties matter for the reproduction:

1. **Run-to-run determinism** — the same seed always produces the same graph,
   samples, and trained model, so benchmark numbers are stable.
2. **Strategy-independence of sampling** — the sampled neighborhood of a seed
   node must depend only on ``(global_seed, epoch, node_id)``, *not* on which
   simulated GPU happens to process the seed.  This is what makes the four
   parallelization strategies numerically identical (paper Fig. 6): they
   regroup the same sampled subgraphs, they never resample them differently.
   :func:`seed_for_node` provides the per-node stream key used by the
   neighbor sampler.
"""

from __future__ import annotations

import numpy as np

# A large odd multiplier for cheap integer hashing (splitmix64-style).
_MIX_A = 0x9E3779B97F4A7C15
_MIX_B = 0xBF58476D1CE4E5B9
_MIX_C = 0x94D049BB133111EB
_MASK = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    """One round of the splitmix64 mixing function (public domain)."""
    x = (x + _MIX_A) & _MASK
    x = ((x ^ (x >> 30)) * _MIX_B) & _MASK
    x = ((x ^ (x >> 27)) * _MIX_C) & _MASK
    return x ^ (x >> 31)


def rng_from(seed: int, *streams: int) -> np.random.Generator:
    """Return a Generator keyed by ``seed`` and an optional stream tuple.

    ``rng_from(s, a, b)`` and ``rng_from(s, a, c)`` are independent streams
    for ``b != c``; both are reproducible functions of their arguments.
    """
    key = _splitmix64(int(seed) & _MASK)
    for s in streams:
        key = _splitmix64(key ^ (int(s) & _MASK))
    return np.random.default_rng(key)


def seed_for_node(global_seed: int, epoch: int, node_id: int) -> int:
    """Deterministic 64-bit stream key for sampling one node's neighborhood.

    The key is independent of the device and minibatch that process the node,
    which guarantees that all parallelization strategies observe identical
    sampled subgraphs for identical seed nodes within an epoch.
    """
    key = _splitmix64(int(global_seed) & _MASK)
    key = _splitmix64(key ^ (int(epoch) & _MASK))
    key = _splitmix64(key ^ (int(node_id) & _MASK))
    return key


def spawn_rngs(seed: int, n: int) -> list[np.random.Generator]:
    """Return ``n`` independent generators derived from one seed."""
    return [rng_from(seed, i) for i in range(n)]
