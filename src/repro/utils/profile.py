"""Lightweight wall-clock profiling hooks for the perf-regression harness.

``profiled("label")`` (context manager) and ``@profile("label")``
(decorator) measure *host* wall-clock seconds — unlike everything in
:mod:`repro.cluster.timeline`, nothing here touches simulated time.  Spans
accumulate into a module-level registry (``profile_totals`` /
``reset_profile``), and optionally feed a
:class:`~repro.obs.telemetry.TelemetryCollector` as ``"profile"`` events so
host-side hot-spot data interleaves with the simulated event stream.

``benchmarks/bench_micro.py`` builds its op timings on these hooks; they
are cheap enough (~1 µs per span) to leave in diagnostic call sites.
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Optional

__all__ = ["profile", "profiled", "profile_totals", "reset_profile"]

#: label -> [accumulated seconds, call count]
_totals: Dict[str, list] = {}


def reset_profile() -> None:
    """Drop all accumulated spans."""
    _totals.clear()


def profile_totals() -> Dict[str, Dict[str, float]]:
    """Snapshot of accumulated spans: ``label -> {seconds, calls}``."""
    return {
        label: {"seconds": sec, "calls": float(calls)}
        for label, (sec, calls) in sorted(_totals.items())
    }


@contextmanager
def profiled(label: str, telemetry: Optional[Any] = None):
    """Measure the wrapped block's wall-clock time under ``label``.

    The span lands in the module registry; with a ``telemetry`` collector
    it is also emitted as a ``"profile"`` event and accumulated under the
    ``profile.<label>`` counter.
    """
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        entry = _totals.setdefault(label, [0.0, 0])
        entry[0] += elapsed
        entry[1] += 1
        if telemetry is not None:
            telemetry.emit("profile", label=label, seconds=elapsed)
            telemetry.count(f"profile.{label}", elapsed)


def profile(
    label: Optional[str] = None, telemetry: Optional[Any] = None
) -> Callable:
    """Decorator form of :func:`profiled`; defaults to the qualname."""

    def decorate(fn: Callable) -> Callable:
        span = label if label is not None else fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with profiled(span, telemetry=telemetry):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
