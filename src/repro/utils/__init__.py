"""Shared utilities: seeded RNG helpers, validation, and lightweight timers."""

from repro.utils.profile import profile, profile_totals, profiled, reset_profile
from repro.utils.random import rng_from, seed_for_node, spawn_rngs
from repro.utils.timing import WallTimer
from repro.utils.validation import (
    check_dim,
    check_index_array,
    check_positive,
    check_probability,
)

__all__ = [
    "rng_from",
    "seed_for_node",
    "spawn_rngs",
    "WallTimer",
    "profile",
    "profiled",
    "profile_totals",
    "reset_profile",
    "check_dim",
    "check_index_array",
    "check_positive",
    "check_probability",
]
