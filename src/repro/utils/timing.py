"""Wall-clock timing helper for benchmarks and the dry-run overhead report."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class WallTimer:
    """Accumulating wall-clock timer.

    Usage::

        t = WallTimer()
        with t.measure("sample"):
            ...
        t.total("sample")  # seconds
    """

    _totals: dict = field(default_factory=dict)

    def measure(self, label: str):
        return _Section(self, label)

    def add(self, label: str, seconds: float) -> None:
        self._totals[label] = self._totals.get(label, 0.0) + seconds

    def total(self, label: str) -> float:
        return self._totals.get(label, 0.0)

    def totals(self) -> dict:
        return dict(self._totals)


class _Section:
    def __init__(self, timer: WallTimer, label: str):
        self._timer = timer
        self._label = label
        self._start = 0.0

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self._timer.add(self._label, time.perf_counter() - self._start)
        return False
