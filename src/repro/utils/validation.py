"""Small argument-validation helpers used across the library.

These raise early, descriptive errors instead of letting malformed inputs
propagate into vectorized NumPy code where failures are hard to attribute.
"""

from __future__ import annotations

import numpy as np


def check_positive(name: str, value: float, strict: bool = True) -> None:
    """Raise ``ValueError`` unless ``value`` is positive (or >= 0)."""
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def check_probability(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` lies in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")


def check_dim(name: str, value: int) -> None:
    """Raise ``ValueError`` unless ``value`` is a positive integer dimension."""
    if int(value) != value or value <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value!r}")


def check_index_array(name: str, arr: np.ndarray, upper: int) -> None:
    """Raise unless ``arr`` is an integer array with entries in [0, upper)."""
    a = np.asarray(arr)
    if a.size == 0:
        return
    if not np.issubdtype(a.dtype, np.integer):
        raise TypeError(f"{name} must be an integer array, got dtype {a.dtype}")
    lo, hi = int(a.min()), int(a.max())
    if lo < 0 or hi >= upper:
        raise IndexError(
            f"{name} entries must be in [0, {upper}), got range [{lo}, {hi}]"
        )
