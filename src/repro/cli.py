"""Command-line interface: ``python -m repro <command>``.

Commands mirror the APT workflow — training *and* serving share the same
task flags, the same ``--json`` output path, and the same common flags
(``--seed``, ``--checkpoint-dir``, ``--inject``):

``plan``
    Dry-run the strategies on a dataset analog and print the cost-model
    ranking.  ``--objective epoch`` (default) ranks by epoch seconds (the
    paper's Plan step); ``--objective latency`` ranks by predicted p99
    per-request serving latency at ``--policy`` (DESIGN.md §5.13).
``run``
    Train with a chosen (or auto-selected) strategy and report simulated
    epoch times and losses.  ``--inject FILE`` applies a fault schedule
    (see :mod:`repro.cluster.faults`); ``--replan`` turns on drift-
    triggered re-planning with mid-run strategy switching.
``trace``
    Run one strategy with per-phase tracing and write a
    ``chrome://tracing`` JSON of the simulated timeline.
``serve``
    Answer a seeded synthetic request stream from a trained model with
    dynamic batching (``--policy "<max_batch>:<max_wait_ms>"``) and report
    the latency percentiles.  ``--checkpoint-dir`` serves the latest
    checkpoint (auto-training one first when the directory is empty).
``gen``
    Generate an on-disk streaming dataset directory (chunked generators,
    memory-mapped features).  ``plan``/``run``/``trace``/``serve`` consume
    it via ``--dataset-dir``; the feature store then activates its disk
    tier and trains without the feature matrix ever being fully resident.
``loadgen``
    Emit the synthetic request stream itself (for offline inspection or
    replay): Zipf skew, bursts, diurnal modulation, hot-set drift.
``compare``
    Run every strategy from the same initial model and print the paper-
    style epoch-time table.
``report``
    Summarize saved benchmark results (``benchmarks/results/*.json``).

Examples::

    python -m repro plan --dataset fs --hidden 32 --json
    python -m repro plan --objective latency --policy 32:2
    python -m repro run --dataset ps --strategy auto --epochs 3
    python -m repro run --inject faults.json --replan --epochs 8 --json
    python -m repro trace --strategy dnp --out trace.json
    python -m repro gen /tmp/ds --nodes 1000000 --feature-dim 128
    python -m repro run --dataset-dir /tmp/ds --epochs 2 --json
    python -m repro serve --requests 2048 --policy 32:2 --checkpoint-dir ck/
    python -m repro loadgen --requests 512 --rate 800 --drift-every 0.2
    python -m repro compare --dataset fs --machines 4 --gpus 16 --hybrid
    python -m repro report
"""

from __future__ import annotations

import argparse
import json
import pathlib
from typing import Optional

from repro.cluster import (
    multi_machine_cluster,
    parse_cluster_spec,
    single_machine_cluster,
)
from repro.config import APTConfig, PAPER_CACHE_GB, scaled_gpu_cache_bytes
from repro.core import APT
from repro.graph import load_dataset, open_streaming_dataset, write_streaming_dataset
from repro.models import GAT, GCN, GraphSAGE


def _add_task_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--dataset", choices=("ps", "fs", "im"), default="fs",
                   help="dataset analog (paper Table 2 abbreviations)")
    p.add_argument("--dataset-dir", metavar="DIR", default=None,
                   help="train on an on-disk streaming dataset directory "
                        "(from `repro gen`) instead of --dataset/--nodes; "
                        "features stay memory-mapped and the store's disk "
                        "tier activates (DESIGN.md §5.14)")
    p.add_argument("--nodes", type=int, default=12_000,
                   help="analog size in nodes")
    p.add_argument("--partition", choices=("metis", "streaming", "random"),
                   default=None,
                   help="graph partitioner (default: metis; --dataset-dir "
                        "defaults to the coarsen-once streaming partitioner)")
    p.add_argument("--disk-promote-mb", type=int, default=None,
                   help="hot-row promotion budget of the disk tier in MiB "
                        "(default: REPRO_DISK_PROMOTE_MB env var or 64)")
    p.add_argument("--model", choices=("sage", "gat", "gcn"), default="sage")
    p.add_argument("--hidden", type=int, default=32,
                   help="hidden dim (GAT: per-head dim)")
    p.add_argument("--layers", type=int, default=3)
    p.add_argument("--heads", type=int, default=4, help="GAT attention heads")
    p.add_argument("--fanout", type=int, nargs="+", default=None,
                   help="per-layer fanouts, input layer first")
    p.add_argument("--machines", type=int, default=1)
    p.add_argument("--gpus", type=int, default=8, help="total GPUs")
    p.add_argument("--cluster", metavar="SPEC", default=None,
                   help="heterogeneous cluster spec overriding --machines/"
                        "--gpus: comma-separated '<count>x<gpus>:<class>' "
                        "groups, e.g. '1x4:a100,2x4:t4' (classes: t4, v100, "
                        "a100, cpu; DESIGN.md §5.17)")
    p.add_argument("--cache-gb", type=float, default=PAPER_CACHE_GB,
                   help="per-GPU cache (paper-GB, rescaled to the analog)")
    p.add_argument("--batch-per-gpu", type=int, default=128)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--backend", choices=("serial", "process"), default=None,
                   help="execution backend (default: REPRO_EXECUTION_BACKEND "
                        "env var or 'serial'); 'process' samples batches in a "
                        "shared-memory worker pool with pipelined prefetch")
    p.add_argument("--workers", type=int, default=None,
                   help="process-backend pool size (default: auto)")
    p.add_argument("--prefetch-depth", type=int, default=None,
                   help="global batches sampled ahead of the numerics "
                        "(0 disables pipelining; default 2)")


def _add_common_flags(
    p: argparse.ArgumentParser, *, checkpoint: bool = False, inject: bool = False
) -> None:
    """The output/state flags every workflow command shares."""
    p.add_argument("--json", action="store_true",
                   help="emit the command's report as JSON instead of text")
    if checkpoint:
        p.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                       help="checkpoint directory (run: write into it; "
                            "serve: load the latest checkpoint from it, "
                            "auto-training one first when empty)")
    if inject:
        p.add_argument("--inject", metavar="FILE", default=None,
                       help="JSON fault schedule to apply at epoch boundaries")


def _add_loadgen_args(p: argparse.ArgumentParser) -> None:
    """Request-stream shape flags shared by ``serve`` and ``loadgen``."""
    p.add_argument("--requests", type=int, default=2048,
                   help="number of requests to generate/answer")
    p.add_argument("--loadgen-seed", type=int, default=None,
                   help="request-stream seed (default: --seed)")
    p.add_argument("--rate", type=float, default=1000.0,
                   help="open-loop arrival rate in requests per simulated "
                        "second; 0 = closed loop (fully backlogged)")
    p.add_argument("--zipf-a", type=float, default=1.2,
                   help="Zipf popularity exponent (> 1)")
    p.add_argument("--drift-every", type=float, default=0.0,
                   help="rotate the hot set every SECONDS (0 disables)")
    p.add_argument("--drift-shift", type=int, default=None,
                   help="popularity ranks rotated per drift window")
    p.add_argument("--burst-every", type=float, default=0.0)
    p.add_argument("--burst-len", type=float, default=0.0)
    p.add_argument("--burst-factor", type=float, default=4.0)
    p.add_argument("--diurnal-period", type=float, default=0.0)
    p.add_argument("--diurnal-amplitude", type=float, default=0.0)


def _make_loadgen(args, num_nodes: int):
    from repro.serve import LoadGenerator

    seed = args.loadgen_seed if args.loadgen_seed is not None else args.seed
    return LoadGenerator(
        num_nodes,
        seed=seed,
        rate=args.rate if args.rate > 0 else None,
        zipf_a=args.zipf_a,
        drift_every=args.drift_every,
        drift_shift=args.drift_shift,
        burst_every=args.burst_every,
        burst_len=args.burst_len,
        burst_factor=args.burst_factor,
        diurnal_period=args.diurnal_period,
        diurnal_amplitude=args.diurnal_amplitude,
    )


def _build(args, quiet: bool = False) -> APT:
    dataset_dir = getattr(args, "dataset_dir", None)
    if dataset_dir is not None:
        try:
            ds = open_streaming_dataset(dataset_dir)
        except (FileNotFoundError, ValueError) as exc:
            raise SystemExit(f"error: bad dataset dir {dataset_dir!r}: {exc}")
    else:
        ds = load_dataset(args.dataset, n=args.nodes)
    cache = scaled_gpu_cache_bytes(ds, args.cache_gb) if args.cache_gb > 0 else 0.0
    if getattr(args, "cluster", None) is not None:
        try:
            cluster = parse_cluster_spec(args.cluster, gpu_cache_bytes=cache)
        except ValueError as exc:
            raise SystemExit(f"error: bad --cluster spec: {exc}")
    elif args.machines == 1:
        cluster = single_machine_cluster(args.gpus, gpu_cache_bytes=cache)
    else:
        cluster = multi_machine_cluster(
            args.machines, args.gpus // args.machines, gpu_cache_bytes=cache
        )
    if args.model == "sage":
        model = GraphSAGE(ds.feature_dim, args.hidden, ds.num_classes,
                          args.layers, seed=args.seed)
    elif args.model == "gcn":
        model = GCN(ds.feature_dim, args.hidden, ds.num_classes,
                    args.layers, seed=args.seed)
    else:
        model = GAT(ds.feature_dim, args.hidden, ds.num_classes,
                    args.layers, args.heads, seed=args.seed)
    fanouts = args.fanout or [10] * args.layers
    config_kwargs = dict(
        fanouts=tuple(fanouts),
        global_batch_size=cluster.num_devices * args.batch_per_gpu,
        seed=args.seed,
    )
    # Only override the env-var-driven defaults when flags were given.
    if args.backend is not None:
        config_kwargs["execution_backend"] = args.backend
    if args.workers is not None:
        config_kwargs["num_workers"] = args.workers
    if args.prefetch_depth is not None:
        config_kwargs["prefetch_depth"] = args.prefetch_depth
    if getattr(args, "checkpoint_dir", None) is not None:
        config_kwargs["checkpoint_dir"] = args.checkpoint_dir
    if getattr(args, "checkpoint_every", None) is not None:
        config_kwargs["checkpoint_every"] = args.checkpoint_every
    if getattr(args, "checkpoint_keep", None) is not None:
        config_kwargs["checkpoint_keep"] = args.checkpoint_keep
    if getattr(args, "no_elastic", False):
        config_kwargs["elastic_policy"] = {"enabled": False}
    if getattr(args, "partition", None) is not None:
        config_kwargs["partition"] = args.partition
    elif dataset_dir is not None:
        # Out-of-core graphs default to the coarsen-once partitioner — the
        # full multilevel METIS analog would materialize per-level copies.
        config_kwargs["partition"] = "streaming"
    if getattr(args, "disk_promote_mb", None) is not None:
        config_kwargs["disk_promote_mb"] = args.disk_promote_mb
    apt = APT(ds, model, cluster, APTConfig(**config_kwargs))
    apt.prepare()
    if not quiet:
        source = dataset_dir if dataset_dir is not None else args.dataset
        print(
            f"task: {source} ({ds.num_nodes} nodes, "
            f"{ds.graph.num_edges} edges, d={ds.feature_dim}), "
            f"{args.model} x{args.layers}, fanouts={fanouts}, "
            f"{cluster.num_devices} GPUs on {cluster.num_machines} machine(s)"
        )
    return apt


def _load_schedule(args):
    """Split one ``--inject`` payload into its simulated and host halves.

    The same file drives both layers: an ``events`` section degrades the
    simulated cluster at epoch boundaries, a ``host_events`` section
    injects real process faults (kill/hang/corrupt/leak) into the worker
    pool.  Returns ``(FaultSchedule | None, HostFaultSchedule | None)``.
    """
    from repro.parallel.chaos import split_injections

    if getattr(args, "inject", None) is None:
        return None, None
    try:
        return split_injections(args.inject)
    except (OSError, ValueError, KeyError, TypeError) as exc:
        raise SystemExit(f"error: bad fault schedule {args.inject!r}: {exc}")


def _strategy_spec(value: str) -> str:
    """argparse type for ``--strategy``: 'auto', a single strategy name, or
    a per-layer composition ``layerwise:<s0>,<s1>,...``."""
    from repro.engine import STRATEGIES, is_layerwise_spec, parse_layerwise

    v = value.strip().lower()
    if v == "auto" or v in STRATEGIES:
        return v
    if is_layerwise_spec(v):
        try:
            parse_layerwise(v)
        except ValueError as exc:
            raise argparse.ArgumentTypeError(str(exc))
        return v
    raise argparse.ArgumentTypeError(
        f"unknown strategy {value!r}: expected auto, one of "
        f"{sorted(STRATEGIES)}, or 'layerwise:<s0>,<s1>,...'"
    )


def cmd_plan(args) -> int:
    apt = _build(args, quiet=args.json)
    candidates = None
    if args.strategy:
        candidates = [s for s in args.strategy if s != "auto"] or None
    if args.objective == "latency":
        from repro.serve import BatchingPolicy

        policy = BatchingPolicy.parse(args.policy)
        report = apt.plan_serving(
            batch_size=policy.max_batch_size,
            max_wait_s=policy.max_wait_s,
            strategies=candidates,
        )
        header = (
            "\ncost-model estimates (predicted per-request serving "
            f"latency at policy {args.policy}):"
        )
    elif args.layerwise:
        report = apt.plan_layerwise(beam_width=args.beam_width)
        header = (
            "\ncost-model estimates (beam-searched per-layer compositions "
            "+ single strategies, seconds per epoch):"
        )
    elif args.objective == "cost":
        report = apt.plan(
            strategies=candidates,
            objective="cost",
            budget_seconds=args.budget_seconds,
            budget_dollars=args.budget_dollars,
        )
        header = (
            "\ncost-model estimates (two-objective: epoch seconds and "
            "dollars per epoch, cheapest first):"
        )
    else:
        report = apt.plan(
            strategies=candidates, budget_dollars=args.budget_dollars
        )
        header = "\ncost-model estimates (strategy-specific seconds per epoch):"
    if args.json:
        print(report.to_json(indent=2))
        return 0
    print(header)
    print(report.summary())
    plan = report.plan
    if plan.objective == "cost" and plan.pareto:
        print("\n(time, $) Pareto frontier, fastest first:")
        for name in plan.pareto:
            e = plan.estimates[name]
            note = ""
            meta = plan.subsets.get(name)
            if meta is not None:
                note = (
                    f"  [drops machine {meta['dropped_machine']}: "
                    f"{meta['devices']} device(s) left]"
                )
            print(f"  {name}: {e.total:.4f}s  ${e.dollars:.3e}/epoch{note}")
    if plan.layer_assignments:
        print("\nper-layer assignments:")
        for name in plan.ranking:
            if name in plan.layer_assignments:
                layers = " -> ".join(plan.layer_assignments[name])
                nbytes = plan.relayout_bytes.get(name, 0.0)
                print(f"  {name}: {layers} (re-layout {nbytes / 1e3:.1f} KB)")
    print(f"\nAPT selects: {report.chosen}")
    return 0


def _traced_run(apt: APT, name: str, epochs: int, lr: float, trace_path: str):
    """Run one strategy with a trace-enabled timeline.

    Returns ``(EpochResults, ExecutionContext)`` — the context gives the
    caller access to the feature store's disk-tier counters and the
    recorder's per-device ledgers after the run.
    """
    from repro.cluster import Communicator, Timeline
    from repro.cluster.compute import ComputeCharger
    from repro.engine import ParallelTrainer, make_strategy
    from repro.tensor.optim import Adam

    ctx = apt._build_context()
    ctx.timeline = Timeline(
        apt.cluster.num_devices, trace=True, telemetry=ctx.telemetry
    )
    ctx.comm = Communicator(apt.cluster, ctx.timeline)
    ctx.charger = ComputeCharger(apt.cluster, ctx.timeline)
    trainer = ParallelTrainer(
        make_strategy(name), ctx, Adam(apt.model.parameters(), lr)
    )
    results = trainer.train(epochs)
    with open(trace_path, "w") as fh:
        json.dump(ctx.timeline.to_chrome_trace(), fh)
    return results, ctx


def _disk_tier_summary(ctx) -> Optional[dict]:
    """Disk-tier counters of a finished run; ``None`` for in-RAM stores."""
    store = ctx.store
    if not store.disk_tier_active:
        return None
    return {
        "rows": store.disk_stats["rows"],
        "bytes": store.disk_stats["bytes"],
        "ranged_reads": store.disk_stats["ranged_reads"],
        "promotions": store.disk_stats["promotions"],
        "refreshes": store.disk_stats["refreshes"],
        "resident_rows": store.disk_resident_count(),
    }


def _device_utilization(ctx) -> dict:
    """Per-device busy seconds and the max/min imbalance ratio of a run.

    Busy time sums the Timeline's four phase ledgers per device; the
    utilization fraction divides by the barrier wall clock.  A ratio near
    1 means speed-proportional balance (DESIGN.md §5.17).
    """
    from repro.cluster.timeline import PHASES

    timeline = ctx.timeline
    wall = timeline.wall_seconds
    busy = [
        sum(timeline.device_phase_seconds(d, p) for p in PHASES)
        for d in range(timeline.num_devices)
    ]
    max_busy, min_busy = max(busy), min(busy)
    return {
        "wall_seconds": wall,
        "busy_seconds": busy,
        "utilization": [b / wall if wall > 0 else 0.0 for b in busy],
        "max_busy": max_busy,
        "min_busy": min_busy,
        "imbalance_ratio": max_busy / min_busy if min_busy > 0 else 0.0,
    }


def cmd_run(args) -> int:
    apt = _build(args, quiet=args.json)
    strategy: Optional[str] = None if args.strategy == "auto" else args.strategy
    if args.trace:
        name = strategy or apt.plan().chosen
        results, _ = _traced_run(apt, name, args.epochs, args.lr, args.trace)
        print(f"ran {len(results)} epoch(s) with {name}; "
              f"chrome trace written to {args.trace}")
        for e in results:
            print(f"  epoch {e.epoch}: loss={e.mean_loss:.4f} "
                  f"simulated={e.wall_seconds * 1e3:.3f} ms")
        return 0
    faults, chaos = _load_schedule(args)
    if chaos is not None:
        apt.config.host_chaos = chaos
    try:
        report = apt.run(
            num_epochs=args.epochs,
            strategy=strategy,
            lr=args.lr,
            faults=faults,
            replan=True if args.replan else None,
            resume=args.resume,
        )
    except RuntimeError as exc:
        # e.g. a membership change with elastic execution disabled, or
        # one that falls below the min_devices floor
        raise SystemExit(f"error: {exc}")
    if args.json:
        print(report.to_json(indent=2))
        return 0
    result = report.result
    print(f"\nran {len(result.epochs)} epoch(s) with {result.strategy}:")
    for e in result.epochs:
        print(
            f"  epoch {e.epoch}: loss={e.mean_loss:.4f} "
            f"simulated={e.wall_seconds * 1e3:.3f} ms "
            f"({e.num_batches} batches, {e.strategy})"
        )
    bd = result.breakdown
    print("breakdown:", {k: f"{v * 1e3:.3f}ms" for k, v in bd.items()})
    for rp in report.replans:
        verb = "switched to" if rp.switched else "re-planned, stayed on"
        print(
            f"re-plan after epoch {rp.epoch}: drift {rp.drift.max_abs:.2f} "
            f"on {rp.drift.worst_term}; {verb} {rp.new_strategy}"
        )
    if report.collector is not None:
        for ev in report.collector.events:
            if ev.kind in ("host_leave", "host_join"):
                verb = "left" if ev.kind == "host_leave" else "joined"
                machine = ev.data.get("machine")
                who = f"machine {machine}" if machine is not None else "a machine"
                cls = ev.data.get("device_class")
                if cls is not None:
                    who += f" ({cls})"
                print(
                    f"{who} {verb} at epoch "
                    f"{ev.epoch}: {ev.data.get('devices_before')} -> "
                    f"{ev.data.get('devices_after')} devices"
                )
            elif ev.kind == "repartition":
                print(
                    f"re-partitioned ({ev.data.get('mode')}) for "
                    f"{ev.data.get('devices_after')} devices at epoch "
                    f"{ev.epoch}"
                )
            elif ev.kind == "elastic_replan" and ev.data.get("switched"):
                print(
                    f"elastic re-plan at epoch {ev.epoch}: switched "
                    f"{ev.data.get('old')} -> {ev.data.get('chosen')}"
                )
    if faults is not None and not report.faults:
        print("fault schedule supplied but no fault fired within the run")
    return 0


def cmd_trace(args) -> int:
    apt = _build(args, quiet=args.json)
    name = args.strategy
    if name == "auto":
        name = apt.plan().chosen
    results, ctx = _traced_run(apt, name, args.epochs, args.lr, args.out)
    disk = _disk_tier_summary(ctx)
    devices = _device_utilization(ctx)
    layerwise = None
    if name.startswith("layerwise:"):
        layerwise = {
            "layer_assignment": name[len("layerwise:"):].split(","),
            "relayout_bytes": ctx.recorder.total_relayout_bytes(),
            "relayout_layer_bytes": {
                str(layer): nbytes
                for layer, nbytes in sorted(
                    ctx.recorder.relayout_layer_bytes.items()
                )
            },
        }
    if args.json:
        payload = {
            "strategy": name,
            "trace_path": args.out,
            "epochs": [
                {
                    "epoch": e.epoch,
                    "mean_loss": e.mean_loss,
                    "wall_seconds": e.wall_seconds,
                    "num_batches": e.num_batches,
                }
                for e in results
            ],
        }
        payload["devices"] = devices
        if disk is not None:
            payload["disk"] = disk
        if layerwise is not None:
            payload["layerwise"] = layerwise
        print(json.dumps(payload, indent=2))
        return 0
    print(f"ran {len(results)} epoch(s) with {name}; "
          f"chrome trace written to {args.out}")
    print("  per-device utilization "
          f"(wall {devices['wall_seconds'] * 1e3:.3f} ms):")
    for d, (busy, util) in enumerate(
        zip(devices["busy_seconds"], devices["utilization"])
    ):
        print(f"    device {d}: busy {busy * 1e3:.3f} ms ({util:.1%})")
    print(f"  max/min busy imbalance ratio: "
          f"{devices['imbalance_ratio']:.3f}")
    if layerwise is not None:
        print("  per-layer strategies:", " -> ".join(layerwise["layer_assignment"]))
        print(f"  re-layout traffic: "
              f"{layerwise['relayout_bytes'] / 1e3:.1f} KB total", end="")
        per = layerwise["relayout_layer_bytes"]
        if per:
            detail = ", ".join(
                f"layer {layer}: {nbytes / 1e3:.1f} KB"
                for layer, nbytes in per.items()
            )
            print(f" ({detail})")
        else:
            print(" (all re-layouts device-local)")
    if disk is not None:
        print(f"  disk tier: {disk['rows']:.0f} rows "
              f"({disk['bytes'] / 2**20:.1f} MiB) in "
              f"{disk['ranged_reads']:.0f} ranged reads; "
              f"{disk['promotions']:.0f} rows promoted over "
              f"{disk['refreshes']:.0f} refreshes "
              f"({disk['resident_rows']} resident)")
    return 0


def cmd_serve(args) -> int:
    from repro.config import ServeConfig
    from repro.core.checkpoint import CheckpointManager
    from repro.serve import BatchingPolicy, ServeEngine

    try:
        policy = BatchingPolicy.parse(args.policy)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    apt = _build(args, quiet=args.json)
    checkpoint_dir = args.checkpoint_dir
    if checkpoint_dir is not None and CheckpointManager(
        checkpoint_dir
    ).latest() is None:
        # Empty/missing checkpoint directory: train a model into it first,
        # so `repro serve --checkpoint-dir fresh/` works in one command.
        if not args.json:
            print(f"no checkpoint under {checkpoint_dir!r}; training "
                  f"{args.train_epochs} epoch(s) first")
        apt.config.checkpoint_dir = checkpoint_dir
        apt.run(num_epochs=args.train_epochs)
        apt.config.checkpoint_dir = None
    elif checkpoint_dir is None and args.train_epochs > 0:
        apt.run(num_epochs=args.train_epochs)
    config = ServeConfig(
        max_batch_size=policy.max_batch_size,
        max_wait_s=policy.max_wait_s,
        cache_policy=args.cache_policy,
        drift_threshold=args.drift_threshold,
        drift_window=args.drift_window,
    )
    engine = ServeEngine(
        apt,
        config=config,
        strategy=None if args.strategy == "auto" else args.strategy,
        checkpoint_dir=checkpoint_dir,
    )
    stream = _make_loadgen(args, apt.dataset.num_nodes).generate(args.requests)
    report = engine.serve(stream)
    if args.json:
        print(report.to_json(indent=2))
        return 0
    lat, svc = report.latency, report.service
    print(f"\nserved {report.num_requests} requests in "
          f"{report.num_batches} batches with {report.strategy} "
          f"(policy {args.policy}, cache {config.cache_policy}):")
    print(f"  latency  p50={lat['p50'] * 1e3:.3f}ms "
          f"p90={lat['p90'] * 1e3:.3f}ms p99={lat['p99'] * 1e3:.3f}ms")
    print(f"  service  p50={svc['p50'] * 1e3:.3f}ms "
          f"p99={svc['p99'] * 1e3:.3f}ms; "
          f"throughput {report.throughput_rps:.0f} req/s (simulated)")
    print(f"  cache hit fraction {report.cache['hit_fraction']:.3f}; "
          f"{len(report.replans)} drift-triggered re-plan(s)")
    print(f"  responses digest {report.responses_digest}")
    return 0


def cmd_gen(args) -> int:
    out = write_streaming_dataset(
        args.out,
        num_nodes=args.nodes,
        avg_degree=args.avg_degree,
        feature_dim=args.feature_dim,
        num_classes=args.classes,
        kind=args.kind,
        seed=args.seed,
        train_fraction=args.train_fraction,
        exponent=args.exponent,
    )
    import numpy as np

    with open(out / "meta.json") as fh:
        meta = json.load(fh)
    num_train = int(np.load(out / "train_seeds.npy").size)
    if args.json:
        print(json.dumps(
            {"path": str(out), "num_train_seeds": num_train, "meta": meta},
            indent=2,
        ))
        return 0
    feat_bytes = (
        meta["num_nodes"] * meta["feature_dim"]
        * np.dtype(meta["feature_dtype"]).itemsize
    )
    print(f"wrote streaming dataset to {out}:")
    print(f"  {meta['num_nodes']} nodes, {meta['num_edges']} edges "
          f"({meta['kind']}, seed {meta['seed']})")
    print(f"  features {meta['num_nodes']}x{meta['feature_dim']} "
          f"({feat_bytes / 2**20:.1f} MiB on disk, never fully resident)")
    print(f"  {num_train} train seeds, {meta['num_classes']} classes")
    print(f"train on it with: repro run --dataset-dir {out}")
    return 0


def cmd_loadgen(args) -> int:
    gen = _make_loadgen(args, args.nodes)
    stream = gen.generate(args.requests)
    payload = {
        "generator": gen.to_dict(),
        "num_requests": len(stream),
        "requests": [
            {"request_id": r.request_id, "node": r.node, "arrival": r.arrival}
            for r in stream
        ],
    }
    if args.output is not None:
        with open(args.output, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        if not args.json:
            print(f"wrote {len(stream)} requests to {args.output}")
            return 0
    if args.json or args.output is None:
        print(json.dumps(payload, indent=2))
    return 0


def cmd_compare(args) -> int:
    apt = _build(args)
    strategies = ["gdp", "nfp", "snp", "dnp"]
    if args.hybrid:
        strategies.append("hyb")
    results = apt.compare_all(
        num_epochs=1, numerics=not args.full, strategies=tuple(strategies)
    )
    plan = apt.plan()
    print(f"\n{'strategy':>9} {'epoch time':>12}  breakdown")
    for name in strategies:
        r = results[name]
        bd = " ".join(f"{k}={v * 1e3:.3f}ms" for k, v in r.breakdown.items())
        marker = " <- APT" if name == plan.chosen else ""
        print(f"{name:>9} {r.epoch_seconds * 1e3:>10.3f}ms  {bd}{marker}")
    best = min(results, key=lambda n: results[n].epoch_seconds)
    print(f"\nactual best: {best}; APT selected: {plan.chosen}")
    return 0


def cmd_report(args) -> int:
    results_dir = pathlib.Path(args.results_dir)
    files = sorted(results_dir.glob("*.json"))
    if not files:
        print(f"no results found under {results_dir} — run "
              "`pytest benchmarks/ --benchmark-only` first")
        return 1
    print(f"benchmark results in {results_dir}:\n")
    for path in files:
        with open(path) as fh:
            payload = json.load(fh)
        summary = _summarize_result(path.stem, payload)
        print(f"  {path.stem:<28} {summary}")
    return 0


def _summarize_result(name: str, payload: dict) -> str:
    """One-line digest of a saved benchmark payload."""
    if "records" in payload and isinstance(payload["records"], list):
        records = payload["records"]
        with_choice = [r for r in records if "apt_choice" in r and "best" in r]
        if with_choice:
            hits = sum(r["apt_choice"] == r["best"] for r in with_choice)
            return f"{len(records)} cases, APT optimal in {hits}/{len(with_choice)}"
        return f"{len(records)} cases"
    if "curves" in payload:
        return f"{len(payload['curves'])} accuracy curves"
    if "table" in payload:
        rows = ", ".join(
            f"{k}: nfp {v.get('nfp', float('nan')):.1f}x"
            for k, v in payload["table"].items()
        )
        return f"max speedup over fixed strategies ({rows})"
    if "max_error" in payload:
        return f"cost-model max |error| {payload['max_error'] * 100:.1f}%"
    if "ours" in payload and "paper" in payload:
        return "ours-vs-paper table"
    return f"{len(payload)} top-level entries"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="APT (PPoPP'25) reproduction — adaptive parallel GNN training",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_plan = sub.add_parser("plan", help="dry-run strategies and rank them")
    _add_task_args(p_plan)
    _add_common_flags(p_plan)
    p_plan.add_argument("--objective", choices=("epoch", "latency", "cost"),
                        default="epoch",
                        help="rank by epoch seconds (training), predicted "
                             "p99 per-request latency (serving), or dollars "
                             "per epoch (cost; sweeps device subsets and "
                             "reports the (time, $) Pareto frontier)")
    p_plan.add_argument("--budget-seconds", type=float, default=None,
                        metavar="S",
                        help="with --objective cost: pick the cheapest "
                             "candidate whose epoch time fits S seconds")
    p_plan.add_argument("--budget-dollars", type=float, default=None,
                        metavar="D",
                        help="with --objective epoch: pick the fastest "
                             "candidate costing at most D dollars per epoch")
    p_plan.add_argument("--policy", default="32:2", metavar="B:MS",
                        help="serving batch policy '<max_batch>:<max_wait_ms>'"
                             " scored by --objective latency")
    p_plan.add_argument("--strategy", type=_strategy_spec, nargs="+",
                        default=None, metavar="SPEC",
                        help="explicit candidate set to rank (names and/or "
                             "layerwise:<s0>,<s1>,... specs); default: the "
                             "config's single-strategy candidates")
    p_plan.add_argument("--layerwise", action="store_true",
                        help="beam-search per-layer strategy compositions "
                             "(DESIGN.md §5.15) instead of ranking a fixed "
                             "candidate set")
    p_plan.add_argument("--beam-width", type=int, default=3,
                        help="beam width of the --layerwise search")
    p_plan.set_defaults(func=cmd_plan)

    p_run = sub.add_parser("run", help="train with a strategy")
    _add_task_args(p_run)
    _add_common_flags(p_run, checkpoint=True, inject=True)
    p_run.add_argument("--strategy", default="auto", type=_strategy_spec,
                       metavar="SPEC",
                       help="auto, gdp/nfp/snp/dnp/hyb, or a per-layer "
                            "composition 'layerwise:<s0>,<s1>,...' (one "
                            "name per model layer)")
    p_run.add_argument("--epochs", type=int, default=3)
    p_run.add_argument("--lr", type=float, default=1e-3)
    p_run.add_argument("--trace", metavar="FILE", default=None,
                       help="write a chrome://tracing JSON of the run")
    p_run.add_argument("--replan", action="store_true",
                       help="re-plan (and possibly hot-switch strategy) when "
                            "observed phase times drift from the estimates")
    p_run.add_argument("--checkpoint-every", type=int, default=None,
                       metavar="N", help="checkpoint cadence in epochs "
                                         "(default 1)")
    p_run.add_argument("--checkpoint-keep", type=int, default=None,
                       metavar="N", help="checkpoints retained per "
                                         "directory (default 3)")
    p_run.add_argument("--no-elastic", action="store_true",
                       help="fail on host_leave/host_join membership "
                            "events instead of re-partitioning and "
                            "continuing on the changed cluster")
    p_run.add_argument("--resume", metavar="DIR", default=None,
                       help="continue from the latest checkpoint in DIR; "
                            "the remaining epochs reproduce the "
                            "uninterrupted run bit for bit")
    p_run.set_defaults(func=cmd_run)

    p_trace = sub.add_parser(
        "trace", help="run one strategy and write a chrome://tracing JSON"
    )
    _add_task_args(p_trace)
    _add_common_flags(p_trace)
    p_trace.add_argument("--strategy", default="auto", type=_strategy_spec,
                         metavar="SPEC",
                         help="auto, a single strategy, or "
                              "'layerwise:<s0>,<s1>,...'")
    p_trace.add_argument("--epochs", type=int, default=1)
    p_trace.add_argument("--lr", type=float, default=1e-3)
    p_trace.add_argument("--out", metavar="FILE", default="trace.json",
                         help="chrome trace output path")
    p_trace.set_defaults(func=cmd_trace)

    p_serve = sub.add_parser(
        "serve", help="answer a synthetic request stream from a trained model"
    )
    _add_task_args(p_serve)
    _add_common_flags(p_serve, checkpoint=True)
    _add_loadgen_args(p_serve)
    p_serve.add_argument("--strategy", default="auto", type=_strategy_spec,
                         metavar="SPEC",
                         help="serving strategy (auto: checkpointed strategy, "
                              "else the latency-objective planner's choice); "
                              "accepts 'layerwise:<s0>,<s1>,...' specs")
    p_serve.add_argument("--policy", default="32:2", metavar="B:MS",
                         help="dynamic batching policy "
                              "'<max_batch>:<max_wait_ms>' (e.g. 32:2)")
    p_serve.add_argument("--cache-policy", choices=("adaptive", "static"),
                         default="adaptive",
                         help="adaptive: re-key the GPU feature cache from "
                              "observed request hotness under drift; static: "
                              "keep the training census keying")
    p_serve.add_argument("--drift-window", type=int, default=8,
                         help="batches per serve-side drift window")
    p_serve.add_argument("--drift-threshold", type=float, default=0.35,
                         help="serve-side drift trigger (relative error)")
    p_serve.add_argument("--train-epochs", type=int, default=2,
                         help="epochs to train when no checkpoint exists "
                              "(0 serves the untrained model)")
    p_serve.set_defaults(func=cmd_serve)

    p_gen = sub.add_parser(
        "gen", help="generate an on-disk streaming dataset directory"
    )
    p_gen.add_argument("out", metavar="DIR",
                       help="output dataset directory (created if missing)")
    p_gen.add_argument("--nodes", type=int, default=1_000_000,
                       help="graph size in nodes")
    p_gen.add_argument("--avg-degree", type=float, default=8.0)
    p_gen.add_argument("--feature-dim", type=int, default=128)
    p_gen.add_argument("--classes", type=int, default=16,
                       help="number of label classes")
    p_gen.add_argument("--kind", choices=("power_law", "rmat"),
                       default="power_law", help="graph generator family")
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("--train-fraction", type=float, default=0.01,
                       help="fraction of nodes used as training seeds")
    p_gen.add_argument("--exponent", type=float, default=2.0,
                       help="power-law degree exponent")
    _add_common_flags(p_gen)
    p_gen.set_defaults(func=cmd_gen)

    p_lg = sub.add_parser(
        "loadgen", help="emit a seeded synthetic request stream as JSON"
    )
    _add_common_flags(p_lg)
    _add_loadgen_args(p_lg)
    p_lg.add_argument("--nodes", type=int, default=12_000,
                      help="size of the node id space requests draw from")
    p_lg.add_argument("--seed", type=int, default=0)
    p_lg.add_argument("--output", metavar="FILE", default=None,
                      help="write the stream to FILE instead of stdout")
    p_lg.set_defaults(func=cmd_loadgen)

    p_cmp = sub.add_parser("compare", help="epoch-time table for all strategies")
    _add_task_args(p_cmp)
    p_cmp.add_argument("--hybrid", action="store_true",
                       help="include the GDPxSNP hybrid")
    p_cmp.add_argument("--full", action="store_true",
                       help="run real numerics (slower) instead of timing-only")
    p_cmp.set_defaults(func=cmd_compare)

    p_rep = sub.add_parser("report", help="summarize saved benchmark results")
    p_rep.add_argument(
        "--results-dir",
        default=str(pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "results"),
    )
    p_rep.set_defaults(func=cmd_report)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
